// Counter semantics: the §4.2 metrics must mean what the paper means by
// them (received = messages in, generated = Adj-RIB-Out group changes,
// transmitted = messages out, per-group splits).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr RouterId kNbr = 0x80000001;

class CounterTest : public ::testing::Test {
 protected:
  CounterTest() : scheme(core::PartitionScheme::uniform(1)) {}

  Speaker& add(RouterId id, bool arr) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = scheme.mapper();
    if (arr) {
      cfg.managed_aps = {0};
      cfg.data_plane = false;
    }
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(id, std::move(s));
    return ref;
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  // 3 clients, 1 ARR.
  void Build() {
    for (RouterId c : {1u, 2u, 3u}) add(c, false);
    add(10, true);
    for (RouterId c : {1u, 2u, 3u}) {
      net.connect(c, 10, sim::msec(1));
      at(10).add_peer(PeerInfo{.id = c, .rr_client = true});
      at(c).add_peer(PeerInfo{.id = 10, .reflector_for = {0}});
    }
    for (auto& [id, s] : speakers) s->start();
  }

  core::PartitionScheme scheme;
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(CounterTest, SingleAnnouncementAccounting) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  const auto& arr = at(10).counters();
  // ARR: one message in (client 1's advert), one group change, two
  // messages out (clients 2 and 3; client 1 is excluded as the sender).
  EXPECT_EQ(arr.updates_received, 1u);
  EXPECT_EQ(arr.updates_generated, 1u);
  EXPECT_EQ(arr.generated_to_clients, 1u);
  EXPECT_EQ(arr.generated_to_rrs, 0u);
  EXPECT_EQ(arr.updates_transmitted, 2u);
  EXPECT_EQ(arr.routes_transmitted, 2u);
  EXPECT_GT(arr.bytes_transmitted, 2 * 19u);
  // Clients 2/3: one message in each, nothing out.
  EXPECT_EQ(at(2).counters().updates_received, 1u);
  EXPECT_EQ(at(2).counters().updates_transmitted, 0u);
  // Client 1: one message out, nothing received back.
  EXPECT_EQ(at(1).counters().updates_transmitted, 1u);
  EXPECT_EQ(at(1).counters().updates_received, 0u);
  EXPECT_EQ(at(1).counters().best_changes, 1u);
}

TEST_F(CounterTest, WithdrawalRoundTripCounts) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  sched.run_to_quiescence(100000);
  at(1).withdraw_ebgp(kNbr, kPfx);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  const auto& arr = at(10).counters();
  EXPECT_EQ(arr.updates_received, 2u);     // announce + withdraw
  EXPECT_EQ(arr.updates_generated, 2u);    // set {r} then set {}
  EXPECT_EQ(arr.updates_transmitted, 4u);  // 2 peers x 2 changes
  EXPECT_EQ(at(2).counters().best_changes, 2u);  // install + remove
}

TEST_F(CounterTest, RoutesReceivedCountsSetContents) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  at(2).inject_ebgp(kNbr + 1,
                    RouteBuilder{kPfx}.as_path({1299, 15169}).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  // Client 3 received the full 2-route set (possibly via one or two
  // messages depending on arrival batching).
  const auto& c3 = at(3).counters();
  EXPECT_GE(c3.routes_received, 2u);
  EXPECT_EQ(at(3).adj_rib_in().routes_for(kPfx).size(), 2u);
}

TEST_F(CounterTest, IdenticalReinjectionIsQuiet) {
  Build();
  const Route r = RouteBuilder{kPfx}.as_path({7018, 15169}).build();
  at(1).inject_ebgp(kNbr, r);
  sched.run_to_quiescence(100000);
  const auto arr_before = at(10).counters();
  at(1).inject_ebgp(kNbr, r);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  // No best change at client 1 => nothing re-advertised or reflected.
  EXPECT_EQ(at(10).counters().updates_received,
            arr_before.updates_received);
  EXPECT_EQ(at(10).counters().updates_transmitted,
            arr_before.updates_transmitted);
}

}  // namespace
}  // namespace abrr::ibgp
