// Topology-Based Route Reflection: RFC 4456 semantics per Table 1.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::LearnedVia;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr RouterId kNbr = 0x80000001;

// Two clusters: cluster 1 = {TRR 11, TRR 12, clients 1, 2},
//               cluster 2 = {TRR 21, clients 3}.
// TRRs are meshed; clients peer only with their cluster's TRRs.
class TbrrTest : public ::testing::Test {
 protected:
  Speaker& add(RouterId id, std::uint32_t cluster_id, bool rr,
               bool multipath = false) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kTbrr;
    cfg.cluster_id = rr ? cluster_id : 0;
    cfg.multipath = multipath;
    cfg.data_plane = !rr;
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(id, std::move(s));
    return ref;
  }

  void connect_client(RouterId client, RouterId trr) {
    net.connect(client, trr, sim::msec(2));
    at(client).add_peer(PeerInfo{.id = trr, .reflector_tbrr = true});
    at(trr).add_peer(PeerInfo{.id = client, .rr_client = true});
  }

  void connect_trrs(RouterId a, RouterId b) {
    net.connect(a, b, sim::msec(2));
    at(a).add_peer(PeerInfo{.id = b, .rr_peer = true});
    at(b).add_peer(PeerInfo{.id = a, .rr_peer = true});
  }

  void BuildTwoClusters(bool multipath = false) {
    add(1, 1, false, multipath);
    add(2, 1, false, multipath);
    add(3, 2, false, multipath);
    add(11, 1, true, multipath);
    add(12, 1, true, multipath);
    add(21, 2, true, multipath);
    connect_client(1, 11);
    connect_client(1, 12);
    connect_client(2, 11);
    connect_client(2, 12);
    connect_client(3, 21);
    connect_trrs(11, 12);
    connect_trrs(11, 21);
    connect_trrs(12, 21);
    for (auto& [id, s] : speakers) s->start();
  }

  Speaker& at(RouterId id) { return *speakers.at(id); }

  Route route(std::uint32_t lp, std::vector<bgp::Asn> path) {
    return RouteBuilder{kPfx}
        .local_pref(lp)
        .as_path(bgp::AsPath{std::move(path)})
        .build();
  }

  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(TbrrTest, ClientRouteReachesAllClusters) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // Remote-cluster client 3 learns it via its TRR.
  const Route* best = at(3).loc_rib().best(kPfx);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->egress(), 1u);
  EXPECT_EQ(best->via, LearnedVia::kIbgp);
}

TEST_F(TbrrTest, ReflectedRouteCarriesOriginatorAndClusterList) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  sched.run_to_quiescence(1000000);
  const Route* best = at(3).loc_rib().best(kPfx);
  ASSERT_NE(best, nullptr);
  ASSERT_TRUE(best->attrs->originator_id.has_value());
  EXPECT_EQ(*best->attrs->originator_id, 1u);
  // Crossed cluster 1's TRR then cluster 2's TRR.
  EXPECT_EQ(best->attrs->cluster_list.size(), 2u);
}

TEST_F(TbrrTest, RouteIsNotReflectedBackToItsOriginator) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  sched.run_to_quiescence(1000000);
  // Client 1 must not receive its own route back from TRRs.
  EXPECT_EQ(at(1).adj_rib_in().peer_size(11), 0u);
  EXPECT_EQ(at(1).adj_rib_in().peer_size(12), 0u);
}

TEST_F(TbrrTest, ClusterListBreaksRedundantTrrEcho) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // TRR 11 and 12 share CLUSTER_ID 1: each drops the other's reflection
  // of client 1's route instead of re-reflecting it.
  EXPECT_GT(at(11).counters().loops_suppressed +
                at(12).counters().loops_suppressed,
            0u);
  // And both still hold exactly one copy from the client itself.
  EXPECT_EQ(at(11).adj_rib_in().peer_size(1), 1u);
}

TEST_F(TbrrTest, TrrLearnedRoutesGoToClientsOnly) {
  BuildTwoClusters();
  at(3).inject_ebgp(kNbr, route(100, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // TRR 11 learned the route from TRR 21 (a non-client): it reflects to
  // its clients but not back into the TRR mesh.
  const auto* clients_out = at(11).out_group(Speaker::kGroupClients);
  ASSERT_NE(clients_out, nullptr);
  EXPECT_EQ(clients_out->size(), 1u);
  const auto* rr_out = at(11).out_group(Speaker::kGroupRrPeers);
  EXPECT_TRUE(rr_out == nullptr || rr_out->size() == 0u);
}

TEST_F(TbrrTest, ClientLearnedRoutesGoEverywhere) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  const auto* clients_out = at(11).out_group(Speaker::kGroupClients);
  const auto* rr_out = at(11).out_group(Speaker::kGroupRrPeers);
  ASSERT_NE(clients_out, nullptr);
  ASSERT_NE(rr_out, nullptr);
  EXPECT_EQ(clients_out->size(), 1u);
  EXPECT_EQ(rr_out->size(), 1u);
}

TEST_F(TbrrTest, BetterRemoteRouteDisplacesClusterRoute) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001, 65002}));
  sched.run_to_quiescence(1000000);
  at(3).inject_ebgp(kNbr + 1, route(100, {65003}));  // shorter
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  for (const RouterId client : {1u, 2u, 3u}) {
    const Route* best = at(client).loc_rib().best(kPfx);
    ASSERT_NE(best, nullptr) << client;
    EXPECT_EQ(best->egress(), 3u) << client;
  }
  // Client 1's own (now losing) route was withdrawn from its TRRs.
  EXPECT_EQ(at(11).adj_rib_in().peer_size(1), 0u);
}

TEST_F(TbrrTest, WithdrawPropagatesAcrossClusters) {
  BuildTwoClusters();
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  sched.run_to_quiescence(1000000);
  ASSERT_NE(at(3).loc_rib().best(kPfx), nullptr);
  at(1).withdraw_ebgp(kNbr, kPfx);
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  EXPECT_EQ(at(3).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(3).rib_in_size(), 0u);
}

TEST_F(TbrrTest, SinglePathTrrAdvertisesOneRoutePerPrefix) {
  BuildTwoClusters();
  // Two AS-level-equal routes in cluster 1.
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(100, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // Single-path TBRR: client 3 sees exactly one route via its TRR.
  EXPECT_EQ(at(21).out_group(Speaker::kGroupClients)->size(), 1u);
  EXPECT_EQ(at(3).adj_rib_in().peer_size(21), 1u);
}

TEST_F(TbrrTest, MultiPathTrrAdvertisesAllBestAsLevelRoutes) {
  BuildTwoClusters(/*multipath=*/true);
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(100, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // Appendix A.3: both AS-level-equal routes reach the remote cluster.
  const auto* out = at(21).out_group(Speaker::kGroupClients);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(at(3).adj_rib_in().peer_size(21), 2u);
}

TEST_F(TbrrTest, TrrPrefersClusterRouteByIgp) {
  BuildTwoClusters();
  // TRR 11 is IGP-near client 1 and far from egress 3.
  at(11).set_igp([](RouterId nh) -> std::int64_t {
    return nh == 1 ? 1 : 100;
  });
  at(1).inject_ebgp(kNbr, route(100, {65001}));
  at(3).inject_ebgp(kNbr + 1, route(100, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  const auto* out = at(11).out_group(Speaker::kGroupClients);
  ASSERT_NE(out, nullptr);
  const auto* routes = out->get(kPfx);
  ASSERT_NE(routes, nullptr);
  ASSERT_EQ(routes->size(), 1u);
  EXPECT_EQ(routes->front().egress(), 1u);
}

}  // namespace
}  // namespace abrr::ibgp
