// Property tests for the wire codec.
//
// Two layers:
//  1. Seeded random model messages: the WireSizer's closed-form size
//     must equal the encoder's actual output byte count, the decoder
//     must accept every encoder output, and the wire bytes must be a
//     fixed point of decode -> reassemble -> encode (exact wire-level
//     round-trip; the model-level full_set flag is compared through the
//     documented mapping).
//  2. Real advertised route sets: converge a testbed in every IbgpMode
//     with packet capture on, then replay every captured frame through
//     the decoder and verify the same fixed-point property, and that
//     the capture's payload byte total equals the network's measured
//     byte accounting (the two are independent paths over the same
//     messages).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "bgp/route.h"
#include "harness/testbed.h"
#include "sim/random.h"
#include "topo/topology.h"
#include "trace/regenerator.h"
#include "trace/workload.h"
#include "wire/codec.h"

namespace abrr::wire {
namespace {

using bgp::Ipv4Prefix;
using bgp::UpdateMessage;

bgp::AttrsPtr random_attrs(sim::Rng& rng) {
  bgp::PathAttrs a;
  const std::size_t path_len = static_cast<std::size_t>(
      rng.uniform_int(0, 10) == 0 ? rng.uniform_int(256, 600)  // 2 segments
                                  : rng.uniform_int(0, 6));
  std::vector<bgp::Asn> asns;
  asns.reserve(path_len);
  for (std::size_t i = 0; i < path_len; ++i) {
    asns.push_back(static_cast<bgp::Asn>(rng.uniform_int(1, 70000)));
  }
  a.as_path = bgp::AsPath{std::move(asns)};
  a.origin = static_cast<bgp::Origin>(rng.uniform_int(0, 2));
  a.next_hop = static_cast<std::uint32_t>(rng.uniform_int(1, 0x7FFFFFFF));
  a.local_pref = static_cast<std::uint32_t>(rng.uniform_int(0, 300));
  if (rng.chance(0.4)) {
    a.med = static_cast<std::uint32_t>(rng.uniform_int(0, 100));
  }
  const int n_comm = static_cast<int>(
      rng.uniform_int(0, 10) == 0 ? rng.uniform_int(64, 80)  // ext-length
                                  : rng.uniform_int(0, 3));
  for (int i = 0; i < n_comm; ++i) {
    a.communities.push_back(
        static_cast<bgp::Community>(rng.uniform_int(0, 1 << 30)));
  }
  if (rng.chance(0.3)) {
    a.originator_id = static_cast<bgp::RouterId>(rng.uniform_int(1, 500));
  }
  const int n_cl = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < n_cl; ++i) {
    a.cluster_list.push_back(
        static_cast<std::uint32_t>(rng.uniform_int(1, 500)));
  }
  if (rng.chance(0.3)) {
    a.ext_communities.push_back(bgp::kAbrrReflectedCommunity);
  }
  return bgp::make_attrs(std::move(a));
}

UpdateMessage random_message(sim::Rng& rng) {
  UpdateMessage m;
  if (rng.chance(0.05)) {
    m.keepalive = true;
    return m;
  }
  const auto len = static_cast<std::uint8_t>(rng.uniform_int(8, 32));
  const auto addr =
      static_cast<std::uint32_t>(rng.uniform_int(1, 0x7FFFFFFF));
  m.prefix = Ipv4Prefix{addr, len};

  // A handful of attribute blocks shared across routes, so grouping and
  // per-group splitting both get exercised.
  std::vector<bgp::AttrsPtr> blocks;
  const int n_blocks = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < n_blocks; ++i) blocks.push_back(random_attrs(rng));

  const int n_announce = static_cast<int>(
      rng.uniform_int(0, 12) == 0 ? rng.uniform_int(500, 1200)  // forces split
                                  : rng.uniform_int(0, 8));
  for (int i = 0; i < n_announce; ++i) {
    bgp::Route r;
    r.prefix = m.prefix;
    r.path_id = static_cast<bgp::PathId>(rng.uniform_int(1, 1000));
    r.attrs = blocks[static_cast<std::size_t>(
        rng.uniform_int(0, n_blocks - 1))];
    m.announce.push_back(std::move(r));
  }
  m.full_set = rng.chance(0.5);
  if (!m.full_set) {
    // Path-id 0 is reserved for the encoder's withdraw-all sentinel;
    // real withdrawn ids are router ids (>= 1).
    const int n_withdraw = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < n_withdraw; ++i) {
      m.withdraw.push_back(
          static_cast<bgp::PathId>(rng.uniform_int(1, 1000)));
    }
  }
  return m;
}

/// The fixed-point property: decoding and reassembling the wire bytes,
/// then encoding again, must reproduce the identical bytes.
void expect_wire_fixed_point(std::span<const std::uint8_t> bytes,
                             Encoder& enc) {
  std::vector<DecodedUpdate> msgs;
  const auto err = decode_all(bytes, msgs);
  ASSERT_FALSE(err.has_value()) << err->to_string();
  const UpdateMessage back = reassemble(msgs);
  const auto again = enc.encode(back);
  ASSERT_EQ(again.size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), again.begin()));
}

TEST(WireRoundTrip, RandomMessagesSizeAndFixedPoint) {
  sim::Rng rng{20110823};  // the paper's publication date as seed
  Encoder enc;
  Encoder enc2;
  WireSizer sizer;
  for (int trial = 0; trial < 300; ++trial) {
    const UpdateMessage m = random_message(rng);
    const auto bytes = enc.encode(m);
    EXPECT_EQ(sizer.message_size(m), bytes.size()) << "trial " << trial;
    expect_wire_fixed_point(bytes, enc2);
  }
  EXPECT_GT(sizer.cached_blocks(), 0u);
}

TEST(WireRoundTrip, ReassembleRecoversModelSemantics) {
  sim::Rng rng{7};
  Encoder enc;
  for (int trial = 0; trial < 200; ++trial) {
    const UpdateMessage m = random_message(rng);
    std::vector<DecodedUpdate> msgs;
    ASSERT_FALSE(decode_all(enc.encode(m), msgs).has_value());
    const UpdateMessage back = reassemble(msgs);

    EXPECT_EQ(back.keepalive, m.keepalive);
    if (m.keepalive) continue;
    if (!m.announce.empty() || !m.withdraw.empty() || m.full_set) {
      EXPECT_EQ(back.prefix, m.prefix);
    }
    // Announced routes survive as a set of (path_id, interned attrs);
    // the wire groups them by block, so order is grouped first-seen.
    std::multiset<std::pair<bgp::PathId, bgp::AttrsPtr>> want, got;
    for (const bgp::Route& r : m.announce) want.emplace(r.path_id, r.attrs);
    for (const bgp::Route& r : back.announce) {
      got.emplace(r.path_id, r.attrs);
    }
    EXPECT_EQ(got, want);
    // Explicit withdraws survive in order; full_set maps through the
    // documented sentinel/announce-train reconstruction.
    if (!m.full_set) {
      EXPECT_EQ(back.withdraw, m.withdraw);
    } else {
      EXPECT_TRUE(back.withdraw.empty());
      EXPECT_TRUE(back.full_set);
    }
  }
}

// --- real advertised route sets, all four IbgpModes --------------------

struct Scenario {
  topo::Topology topology;
  trace::Workload workload;
  std::vector<Ipv4Prefix> prefixes;
};

const Scenario& scenario() {
  static const Scenario* s = [] {
    sim::Rng rng{23};
    topo::TopologyParams tp;
    tp.pops = 2;
    tp.clients_per_pop = 3;
    tp.peer_ases = 3;
    tp.peering_points_per_as = 2;
    auto topology = topo::make_tier1(tp, rng);
    trace::WorkloadParams wp;
    wp.prefixes = 50;
    auto workload = trace::Workload::generate(wp, topology, rng);
    auto* out = new Scenario{std::move(topology), std::move(workload), {}};
    out->prefixes = out->workload.prefixes();
    return out;
  }();
  return *s;
}

class AllModesWire : public ::testing::TestWithParam<ibgp::IbgpMode> {};

TEST_P(AllModesWire, CapturedAdvertisementsRoundTrip) {
  const Scenario& s = scenario();
  harness::TestbedOptions o;
  o.mode = GetParam();
  o.num_aps = 2;
  o.arrs_per_ap = 2;
  o.mrai = sim::msec(500);
  o.seed = 11;
  o.obs.enabled = true;
  o.obs.pcap_frames = std::size_t{1} << 16;  // ample: nothing drops below
  harness::Testbed bed{s.topology, o, s.prefixes};

  trace::RouteRegenerator regen{bed.scheduler(), s.workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(2));
  ASSERT_TRUE(bed.run_to_quiescence());

  const obs::PacketCapture* cap = bed.tracer()->packets();
  ASSERT_NE(cap, nullptr);
  ASSERT_GT(cap->size(), 0u);
  ASSERT_EQ(cap->dropped(), 0u);

  Encoder enc;
  std::size_t frames = 0;
  cap->for_each([&](sim::Time, std::uint32_t, std::uint32_t,
                    std::span<const std::uint8_t> payload) {
    ++frames;
    expect_wire_fixed_point(payload, enc);
  });
  EXPECT_EQ(frames, cap->size());

  // The capture and the byte accounting are independent walks over the
  // same sends; with nothing dropped they must agree exactly, and the
  // registry mirrors the aggregate.
  EXPECT_EQ(cap->payload_bytes(), bed.network().total_bytes());
  EXPECT_EQ(bed.metrics().sum_counters("net.bytes"),
            bed.network().total_bytes());
  EXPECT_EQ(bed.metrics().sum_counters("net.modeled_bytes"),
            bed.network().total_modeled_bytes());
  // Wire-faithful accounting diverges from the closed-form model -- that
  // delta is the point of measuring (EXPERIMENTS.md records it).
  EXPECT_NE(bed.network().total_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, AllModesWire,
                         ::testing::Values(ibgp::IbgpMode::kFullMesh,
                                           ibgp::IbgpMode::kTbrr,
                                           ibgp::IbgpMode::kAbrr,
                                           ibgp::IbgpMode::kDual));

}  // namespace
}  // namespace abrr::wire
