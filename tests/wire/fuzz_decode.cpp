// Fuzz harness for the wire decoder.
//
// The entry point is the standard libFuzzer hook, so with clang this
// file builds as a true coverage-guided fuzzer:
//
//   clang++ -std=c++20 -fsanitize=fuzzer,address -DABRR_WIRE_LIBFUZZER \
//       tests/wire/fuzz_decode.cpp src/wire/codec.cpp ... -Isrc
//
// The container ships GCC only, so the default build (the `fuzz` CMake
// preset) links the fallback driver below instead: a deterministic
// mutation loop over the checked-in corpus, run under ASan. It is not
// coverage-guided, but the mutators are corpus-aware (length-field
// corruption, attribute splicing, truncation) so it reaches the same
// error paths; the decoder's contract — never read out of bounds, never
// crash, always return a structured error — is what both drivers check.
//
// The driver doubles as the corpus generator: --emit-corpus DIR writes
// the encoder-generated seed set that lives under tests/wire/corpus/.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bgp/route.h"
#include "wire/codec.h"

using abrr::wire::DecodedUpdate;
using abrr::wire::decode_all;
using abrr::wire::decode_message;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> in{data, size};

  // Train entry point.
  std::vector<DecodedUpdate> msgs;
  if (const auto err = decode_all(in, msgs)) {
    // Error formatting must be total too.
    const std::string s = err->to_string();
    if (s.empty()) __builtin_trap();
    if (err->offset > size + abrr::wire::kMaxMessageSize) __builtin_trap();
  }

  // Single-message entry point (distinct consumed-length contract).
  DecodedUpdate one;
  std::size_t consumed = 0;
  if (!decode_message(in, one, consumed)) {
    if (consumed < abrr::wire::kHeaderSize || consumed > size) {
      __builtin_trap();  // decoder claimed bytes it never had
    }
  }
  return 0;
}

#ifndef ABRR_WIRE_LIBFUZZER

namespace {

namespace fs = std::filesystem;
using abrr::bgp::Ipv4Prefix;
using abrr::bgp::RouteBuilder;
using abrr::bgp::UpdateMessage;

struct Seed {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

std::vector<std::uint8_t> to_vec(std::span<const std::uint8_t> s) {
  return {s.begin(), s.end()};
}

abrr::bgp::Route mk_route(const Ipv4Prefix& p, std::uint32_t id,
                          std::initializer_list<abrr::bgp::Asn> path,
                          std::uint32_t nh) {
  return RouteBuilder{p}
      .path_id(id)
      .as_path(path)
      .origin(abrr::bgp::Origin::kIgp)
      .next_hop(nh)
      .local_pref(100)
      .build();
}

/// The checked-in seed set: every message shape the encoder can emit,
/// plus handcrafted rejections covering the major error families.
std::vector<Seed> make_seeds() {
  std::vector<Seed> seeds;
  abrr::wire::Encoder enc;
  const auto p8 = Ipv4Prefix::parse("10.0.0.0/8");
  const auto p22 = Ipv4Prefix::parse("172.16.4.0/22");

  {
    UpdateMessage m;
    m.keepalive = true;
    seeds.push_back({"valid_keepalive", to_vec(enc.encode(m))});
  }
  {
    UpdateMessage m;
    m.prefix = p8;
    seeds.push_back({"valid_end_of_rib", to_vec(enc.encode(m))});
  }
  {
    UpdateMessage m;
    m.prefix = p8;
    m.full_set = true;
    seeds.push_back({"valid_withdraw_all_sentinel", to_vec(enc.encode(m))});
  }
  {
    UpdateMessage m;
    m.prefix = p22;
    m.withdraw = {4, 9, 12};
    seeds.push_back({"valid_explicit_withdraws", to_vec(enc.encode(m))});
  }
  {
    UpdateMessage m;
    m.prefix = p22;
    m.full_set = true;
    m.announce.push_back(mk_route(p22, 1, {65001, 65002}, 0x0A000001));
    seeds.push_back({"valid_single_announce", to_vec(enc.encode(m))});
  }
  {
    UpdateMessage m;
    m.prefix = p8;
    m.full_set = true;
    m.announce.push_back(mk_route(p8, 1, {65001}, 0x0A000001));
    m.announce.push_back(mk_route(p8, 2, {65002, 65003}, 0x0A000002));
    m.announce.push_back(mk_route(p8, 3, {65001}, 0x0A000001));
    seeds.push_back({"valid_multi_group_train", to_vec(enc.encode(m))});
  }
  {
    // Every attribute the codec models, in one block.
    abrr::bgp::PathAttrs a;
    std::vector<abrr::bgp::Asn> path;
    for (abrr::bgp::Asn i = 0; i < 300; ++i) path.push_back(65000 + i);
    a.as_path = abrr::bgp::AsPath{std::move(path)};  // 2 segments, ext-len
    a.origin = abrr::bgp::Origin::kEgp;
    a.next_hop = 0x0A000001;
    a.local_pref = 200;
    a.med = 40;
    for (std::uint32_t i = 0; i < 70; ++i) a.communities.push_back(i);
    a.originator_id = 77;
    a.cluster_list = {1, 2, 3};
    a.ext_communities = {abrr::bgp::kAbrrReflectedCommunity};
    UpdateMessage m;
    m.prefix = p22;
    m.full_set = true;
    abrr::bgp::Route r;
    r.prefix = p22;
    r.path_id = 5;
    r.attrs = abrr::bgp::make_attrs(std::move(a));
    m.announce.push_back(std::move(r));
    seeds.push_back({"valid_all_attributes", to_vec(enc.encode(m))});
  }
  {
    UpdateMessage m;
    m.prefix = p8;
    m.full_set = true;
    for (std::uint32_t i = 1; i <= 900; ++i) {
      m.announce.push_back(mk_route(p8, i, {65001}, 0x0A000001));
    }
    seeds.push_back({"valid_split_train", to_vec(enc.encode(m))});
  }

  const auto bad = [&seeds](const char* name,
                            std::vector<std::uint8_t> bytes) {
    seeds.push_back({name, std::move(bytes)});
  };
  std::vector<std::uint8_t> b(19, 0xFF);
  b[16] = 0;
  b[17] = 19;
  b[18] = 4;
  b[3] = 0x00;
  bad("bad_marker", b);
  b.assign(19, 0xFF);
  b[16] = 0;
  b[17] = 19;
  b[18] = 9;
  bad("bad_type", b);
  b.assign(19, 0xFF);
  b[16] = 0xFF;
  b[17] = 0xFF;
  b[18] = 2;
  bad("bad_length_huge", b);
  b.assign(23, 0xFF);
  b[16] = 0;
  b[17] = 23;
  b[18] = 2;
  b[19] = 0x00;
  b[20] = 0x7F;  // withdrawn length far beyond the message
  b[21] = 0;
  b[22] = 0;
  bad("bad_withdrawn_overrun", b);
  b.assign(16, 0xFF);
  b.insert(b.end(), {0, 27, 2, 0, 0, 0, 4, 0x40, 1, 1, 0, 0x40, 1, 1, 1});
  bad("bad_duplicate_origin", b);
  b.assign(16, 0xFF);
  b.insert(b.end(), {0, 27, 2, 0, 0, 0, 4, 0x80, 1, 1, 3, 0, 0, 0, 0});
  bad("bad_origin_flags_and_value", b);
  bad("bad_truncated_header", std::vector<std::uint8_t>(7, 0xFF));
  return seeds;
}

void write_corpus(const fs::path& dir) {
  fs::create_directories(dir);
  for (const Seed& s : make_seeds()) {
    std::ofstream out{dir / (s.name + ".bin"),
                      std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(s.bytes.data()),
              static_cast<std::streamsize>(s.bytes.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", s.name.c_str());
      std::exit(1);
    }
  }
  std::printf("wrote %zu seeds to %s\n", make_seeds().size(),
              dir.string().c_str());
}

std::vector<std::vector<std::uint8_t>> load_corpus(const fs::path& dir) {
  std::vector<std::vector<std::uint8_t>> out;
  if (!fs::is_directory(dir)) return out;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());  // deterministic order
  for (const fs::path& f : files) {
    std::ifstream in{f, std::ios::binary};
    out.emplace_back(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }
  return out;
}

/// Corpus-aware structural mutators: beyond byte noise, corrupt the
/// fields the decoder branches on (message length, attribute lengths)
/// and splice messages so multi-message error paths get hit.
std::vector<std::uint8_t> mutate(
    const std::vector<std::vector<std::uint8_t>>& corpus,
    std::mt19937_64& rng) {
  auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };
  std::vector<std::uint8_t> v = corpus[pick(corpus.size())];
  const int ops = 1 + static_cast<int>(rng() % 8);
  for (int i = 0; i < ops; ++i) {
    if (v.empty()) v.push_back(static_cast<std::uint8_t>(rng()));
    switch (rng() % 8) {
      case 0:  // flip a byte
        v[pick(v.size())] = static_cast<std::uint8_t>(rng());
        break;
      case 1:  // flip one bit
        v[pick(v.size())] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      case 2:  // truncate
        v.resize(pick(v.size() + 1));
        break;
      case 3:  // insert a random byte
        v.insert(v.begin() + static_cast<std::ptrdiff_t>(pick(v.size() + 1)),
                 static_cast<std::uint8_t>(rng()));
        break;
      case 4:  // erase a byte
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(pick(v.size())));
        break;
      case 5:  // corrupt the message length field
        if (v.size() >= 18) {
          v[16] = static_cast<std::uint8_t>(rng());
          v[17] = static_cast<std::uint8_t>(rng());
        }
        break;
      case 6: {  // splice another seed's tail onto our head
        const auto& other = corpus[pick(corpus.size())];
        if (!other.empty()) {
          const std::size_t cut = pick(other.size());
          v.insert(v.end(), other.begin() + static_cast<std::ptrdiff_t>(cut),
                   other.end());
        }
        break;
      }
      case 7:  // append a whole seed (multi-message trains)
      default: {
        const auto& other = corpus[pick(corpus.size())];
        v.insert(v.end(), other.begin(), other.end());
        break;
      }
    }
    if (v.size() > 3 * abrr::wire::kMaxMessageSize) {
      v.resize(3 * abrr::wire::kMaxMessageSize);
    }
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 200'000;
  long max_seconds = 0;
  std::uint64_t seed = 1;
  std::vector<fs::path> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-seconds" && i + 1 < argc) {
      max_seconds = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--emit-corpus" && i + 1 < argc) {
      write_corpus(argv[++i]);
      return 0;
    } else {
      dirs.emplace_back(arg);
    }
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  for (const fs::path& d : dirs) {
    for (auto& bytes : load_corpus(d)) corpus.push_back(std::move(bytes));
  }
  if (corpus.empty()) {
    // No corpus on disk: fall back to the generated seed set so the
    // driver is self-contained.
    for (auto& s : make_seeds()) corpus.push_back(std::move(s.bytes));
  }
  std::printf("fuzz_decode: %zu seeds, %llu iterations, seed %llu\n",
              corpus.size(), static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(seed));

  // Seeds themselves must pass.
  for (const auto& s : corpus) LLVMFuzzerTestOneInput(s.data(), s.size());

  const std::time_t t0 = std::time(nullptr);
  std::mt19937_64 rng{seed};
  std::uint64_t done = 0;
  for (; done < iterations; ++done) {
    const std::vector<std::uint8_t> input = mutate(corpus, rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    if ((done & 0xFFFF) == 0xFFFF && max_seconds > 0 &&
        std::time(nullptr) - t0 >= max_seconds) {
      ++done;
      break;
    }
  }
  std::printf("fuzz_decode: %llu iterations, 0 crashes\n",
              static_cast<unsigned long long>(done));
  return 0;
}

#endif  // ABRR_WIRE_LIBFUZZER
