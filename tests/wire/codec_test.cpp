// Exact wire-layout and rejection tests for the RFC 4271/7911 codec.
//
// The layout tests pin every byte of representative encodings (so a
// codec change that moves a single octet fails loudly); the rejection
// tests cover every RFC 4271 §6.1/§6.3 subcode the decoder can return,
// one malformed input per subcode.
#include "wire/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/route.h"

namespace abrr::wire {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;
using bgp::UpdateMessage;

void be16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  be16(out, static_cast<std::uint16_t>(v >> 16));
  be16(out, static_cast<std::uint16_t>(v));
}

/// Frames `body` as one BGP message of `type`; `forced_len` overrides
/// the length field for header-error tests.
std::vector<std::uint8_t> frame(std::uint8_t type,
                                const std::vector<std::uint8_t>& body,
                                int forced_len = -1) {
  std::vector<std::uint8_t> out(16, 0xFF);
  const std::size_t len =
      forced_len >= 0 ? static_cast<std::size_t>(forced_len)
                      : kHeaderSize + body.size();
  be16(out, static_cast<std::uint16_t>(len));
  out.push_back(type);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

/// UPDATE body from its three raw fields.
std::vector<std::uint8_t> update_body(
    const std::vector<std::uint8_t>& withdrawn,
    const std::vector<std::uint8_t>& attrs,
    const std::vector<std::uint8_t>& nlri) {
  std::vector<std::uint8_t> out;
  be16(out, static_cast<std::uint16_t>(withdrawn.size()));
  out.insert(out.end(), withdrawn.begin(), withdrawn.end());
  be16(out, static_cast<std::uint16_t>(attrs.size()));
  out.insert(out.end(), attrs.begin(), attrs.end());
  out.insert(out.end(), nlri.begin(), nlri.end());
  return out;
}

void attr(std::vector<std::uint8_t>& out, std::uint8_t flags,
          std::uint8_t type, const std::vector<std::uint8_t>& value) {
  out.push_back(flags);
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

/// A minimal valid mandatory attribute set (ORIGIN, AS_PATH, NEXT_HOP).
std::vector<std::uint8_t> mandatory_attrs() {
  std::vector<std::uint8_t> a;
  attr(a, 0x40, 1, {0});                                   // ORIGIN igp
  attr(a, 0x40, 2, {2, 1, 0x00, 0x00, 0xFD, 0xE9});        // AS_PATH [65001]
  attr(a, 0x40, 3, {10, 0, 0, 1});                         // NEXT_HOP
  return a;
}

/// One valid add-paths NLRI entry: path-id 7, 10.0.0.0/8.
std::vector<std::uint8_t> one_nlri() {
  std::vector<std::uint8_t> n;
  be32(n, 7);
  n.push_back(8);
  n.push_back(10);
  return n;
}

std::optional<DecodeError> decode(const std::vector<std::uint8_t>& in) {
  DecodedUpdate out;
  std::size_t consumed = 0;
  return decode_message(std::span<const std::uint8_t>{in}, out, consumed);
}

void expect_error(const std::vector<std::uint8_t>& in, ErrorCode code,
                  std::uint8_t subcode) {
  const auto err = decode(in);
  ASSERT_TRUE(err.has_value()) << "decoder accepted malformed input";
  EXPECT_EQ(err->code, code) << err->to_string();
  EXPECT_EQ(err->subcode, subcode) << err->to_string();
}

Route route(const Ipv4Prefix& prefix, bgp::PathId id,
            std::initializer_list<bgp::Asn> path, std::uint32_t next_hop) {
  return RouteBuilder{prefix}
      .path_id(id)
      .as_path(path)
      .origin(bgp::Origin::kIgp)
      .next_hop(next_hop)
      .local_pref(100)
      .build();
}

// --- exact layout -----------------------------------------------------

TEST(WireEncoder, KeepaliveIsExactly19Bytes) {
  Encoder enc;
  UpdateMessage m;
  m.keepalive = true;
  const auto out = enc.encode(m);
  std::vector<std::uint8_t> expect(16, 0xFF);
  be16(expect, 19);
  expect.push_back(kTypeKeepalive);
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), expect);
}

TEST(WireEncoder, SingleAnnounceExactLayout) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.full_set = true;
  m.announce.push_back(
      route(m.prefix, 7, {65001, 65002}, 0x0A000001));
  const auto out = enc.encode(m);

  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 1, {0});  // ORIGIN igp
  attr(attrs, 0x40, 2,
       {2, 2, 0x00, 0x00, 0xFD, 0xE9, 0x00, 0x00, 0xFD, 0xEA});  // AS_PATH
  attr(attrs, 0x40, 3, {0x0A, 0x00, 0x00, 0x01});                // NEXT_HOP
  attr(attrs, 0x40, 5, {0, 0, 0, 100});                          // LOCAL_PREF
  std::vector<std::uint8_t> nlri;
  be32(nlri, 7);
  nlri.push_back(8);
  nlri.push_back(10);
  const auto expect = frame(kTypeUpdate, update_body({}, attrs, nlri));

  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), expect);
  EXPECT_EQ(out.size(), 60u);
}

TEST(WireEncoder, ExplicitWithdrawsLeadTheTrain) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("192.168.0.0/16");
  m.withdraw = {3, 9};
  const auto out = enc.encode(m);

  std::vector<std::uint8_t> withdrawn;
  be32(withdrawn, 3);
  withdrawn.push_back(16);
  withdrawn.push_back(192);
  withdrawn.push_back(168);
  be32(withdrawn, 9);
  withdrawn.push_back(16);
  withdrawn.push_back(192);
  withdrawn.push_back(168);
  const auto expect = frame(kTypeUpdate, update_body(withdrawn, {}, {}));
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), expect);
}

TEST(WireEncoder, FullSetWithdrawUsesPathIdZeroSentinel) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.full_set = true;  // announce empty: "prefix gone entirely"
  const auto out = enc.encode(m);

  std::vector<std::uint8_t> withdrawn;
  be32(withdrawn, 0);
  withdrawn.push_back(8);
  withdrawn.push_back(10);
  const auto expect = frame(kTypeUpdate, update_body(withdrawn, {}, {}));
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), expect);
}

TEST(WireEncoder, EmptyMessageIsEndOfRib) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  const auto out = enc.encode(m);
  EXPECT_EQ(out.size(), 23u);  // bare header + two zero lengths
  const auto expect = frame(kTypeUpdate, update_body({}, {}, {}));
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), expect);
}

TEST(WireEncoder, GroupsAnnouncesByAttributeBlock) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.full_set = true;
  m.announce.push_back(route(m.prefix, 1, {65001}, 0x0A000001));
  m.announce.push_back(route(m.prefix, 2, {65002}, 0x0A000002));
  m.announce.push_back(route(m.prefix, 3, {65001}, 0x0A000001));
  ASSERT_EQ(m.announce[0].attrs, m.announce[2].attrs);  // interned

  const auto out = enc.encode(m);
  std::vector<DecodedUpdate> msgs;
  ASSERT_FALSE(decode_all(out, msgs).has_value());
  ASSERT_EQ(msgs.size(), 2u);  // two attribute blocks -> two UPDATEs
  // First-seen order: block of routes 1 and 3 first, then route 2's.
  ASSERT_EQ(msgs[0].nlri.size(), 2u);
  EXPECT_EQ(msgs[0].nlri[0].path_id, 1u);
  EXPECT_EQ(msgs[0].nlri[1].path_id, 3u);
  ASSERT_EQ(msgs[1].nlri.size(), 1u);
  EXPECT_EQ(msgs[1].nlri[0].path_id, 2u);
  EXPECT_EQ(msgs[0].attrs.as_path.first(), 65001u);
  EXPECT_EQ(msgs[1].attrs.as_path.first(), 65002u);
}

TEST(WireEncoder, SplitsGroupsAtTheMessageSizeLimit) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.full_set = true;
  for (std::uint32_t i = 1; i <= 1500; ++i) {
    m.announce.push_back(route(m.prefix, i, {65001}, 0x0A000001));
  }
  const auto out = enc.encode(m);
  std::vector<DecodedUpdate> msgs;
  ASSERT_FALSE(decode_all(out, msgs).has_value());
  ASSERT_GT(msgs.size(), 1u);
  std::size_t total = 0;
  std::uint32_t expect_id = 1;
  for (const DecodedUpdate& u : msgs) {
    total += u.nlri.size();
    for (const PathEntry& e : u.nlri) EXPECT_EQ(e.path_id, expect_id++);
  }
  EXPECT_EQ(total, 1500u);
  // Every message respects the RFC limit.
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t len = static_cast<std::size_t>(out[pos + 16]) << 8 |
                            out[pos + 17];
    EXPECT_LE(len, kMaxMessageSize);
    pos += len;
  }
  EXPECT_EQ(pos, out.size());
}

TEST(WireSizer, MatchesEncoderExactly) {
  Encoder enc;
  WireSizer sizer;
  const auto prefix = Ipv4Prefix::parse("10.1.0.0/16");

  std::vector<UpdateMessage> cases;
  {
    UpdateMessage m;
    m.keepalive = true;
    cases.push_back(m);
  }
  {
    UpdateMessage m;
    m.prefix = prefix;
    cases.push_back(m);  // End-of-RIB
  }
  {
    UpdateMessage m;
    m.prefix = prefix;
    m.full_set = true;
    cases.push_back(m);  // withdraw-all sentinel
  }
  {
    UpdateMessage m;
    m.prefix = prefix;
    m.withdraw = {1, 2, 3};
    cases.push_back(m);
  }
  {
    UpdateMessage m;
    m.prefix = prefix;
    m.full_set = true;
    for (std::uint32_t i = 1; i <= 900; ++i) {
      m.announce.push_back(route(prefix, i, {65001, 65002}, 0x0A000001));
      if (i % 3 == 0) {
        m.announce.push_back(route(prefix, 2000 + i, {65002}, 0x0A000002));
      }
    }
    cases.push_back(m);  // multi-group with splitting
  }
  for (const UpdateMessage& m : cases) {
    EXPECT_EQ(sizer.message_size(m), enc.encode(m).size());
  }
  EXPECT_EQ(sizer.cached_blocks(), 2u);
}

TEST(WireReassemble, InvertsTheEncoderMapping) {
  Encoder enc;
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.full_set = true;
  m.announce.push_back(route(m.prefix, 4, {65001, 64999}, 0x0A000001));
  m.announce.push_back(route(m.prefix, 5, {65002}, 0x0A000002));

  std::vector<DecodedUpdate> msgs;
  ASSERT_FALSE(decode_all(enc.encode(m), msgs).has_value());
  const UpdateMessage back = reassemble(msgs);
  EXPECT_EQ(back.prefix, m.prefix);
  EXPECT_TRUE(back.full_set);
  ASSERT_EQ(back.announce.size(), 2u);
  EXPECT_EQ(back.announce[0].path_id, 4u);
  EXPECT_EQ(back.announce[1].path_id, 5u);
  // Decoded blocks re-intern to the identical attribute pointers.
  EXPECT_EQ(back.announce[0].attrs, m.announce[0].attrs);
  EXPECT_EQ(back.announce[1].attrs, m.announce[1].attrs);
}

// --- §6.1 message header errors ---------------------------------------

TEST(WireDecoder, RejectsBadMarker) {
  auto in = frame(kTypeKeepalive, {});
  in[5] = 0x00;
  expect_error(in, ErrorCode::kMessageHeader, kConnectionNotSynchronized);
}

TEST(WireDecoder, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> in(10, 0xFF);
  expect_error(in, ErrorCode::kMessageHeader, kBadMessageLength);
}

TEST(WireDecoder, RejectsLengthBelowMinimum) {
  expect_error(frame(kTypeKeepalive, {}, 18), ErrorCode::kMessageHeader,
               kBadMessageLength);
}

TEST(WireDecoder, RejectsLengthAboveMaximum) {
  expect_error(frame(kTypeUpdate, {}, 4097), ErrorCode::kMessageHeader,
               kBadMessageLength);
}

TEST(WireDecoder, RejectsLengthBeyondBuffer) {
  expect_error(frame(kTypeUpdate, update_body({}, {}, {}), 100),
               ErrorCode::kMessageHeader, kBadMessageLength);
}

TEST(WireDecoder, RejectsKeepaliveWithBody) {
  expect_error(frame(kTypeKeepalive, {0x00}), ErrorCode::kMessageHeader,
               kBadMessageLength);
}

TEST(WireDecoder, RejectsUnknownMessageType) {
  expect_error(frame(9, update_body({}, {}, {})), ErrorCode::kMessageHeader,
               kBadMessageType);
  expect_error(frame(1, update_body({}, {}, {})), ErrorCode::kMessageHeader,
               kBadMessageType);  // OPEN never rides this transport
}

// --- §6.3 UPDATE errors -----------------------------------------------

TEST(WireDecoder, RejectsWithdrawnLengthOverrun) {
  std::vector<std::uint8_t> body;
  be16(body, 10);  // claims 10 withdrawn bytes, none follow
  expect_error(frame(kTypeUpdate, body), ErrorCode::kUpdateMessage,
               kMalformedAttributeList);
}

TEST(WireDecoder, RejectsAttributeLengthOverrun) {
  std::vector<std::uint8_t> body;
  be16(body, 0);
  be16(body, 50);  // claims 50 attribute bytes, none follow
  expect_error(frame(kTypeUpdate, body), ErrorCode::kUpdateMessage,
               kMalformedAttributeList);
}

TEST(WireDecoder, RejectsTruncatedAttributeHeader) {
  expect_error(frame(kTypeUpdate, update_body({}, {0x40, 1}, {})),
               ErrorCode::kUpdateMessage, kMalformedAttributeList);
}

TEST(WireDecoder, RejectsTruncatedExtendedLength) {
  expect_error(frame(kTypeUpdate, update_body({}, {0x50, 2, 0x01}, {})),
               ErrorCode::kUpdateMessage, kAttributeLengthError);
}

TEST(WireDecoder, RejectsAttributeValueOverrun) {
  std::vector<std::uint8_t> attrs;
  attrs.push_back(0x40);
  attrs.push_back(1);
  attrs.push_back(9);  // ORIGIN claiming 9 value bytes, none follow
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kAttributeLengthError);
}

TEST(WireDecoder, RejectsDuplicateAttribute) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 1, {0});
  attr(attrs, 0x40, 1, {1});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kMalformedAttributeList);
}

TEST(WireDecoder, RejectsUnknownWellKnownAttribute) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 77, {1, 2});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kUnrecognizedWellKnownAttribute);
}

TEST(WireDecoder, SkipsUnknownOptionalAttribute) {
  std::vector<std::uint8_t> attrs = mandatory_attrs();
  attr(attrs, 0xC0, 77, {1, 2, 3});  // unknown optional transitive
  EXPECT_FALSE(
      decode(frame(kTypeUpdate, update_body({}, attrs, one_nlri())))
          .has_value());
}

TEST(WireDecoder, RejectsMissingMandatoryAttribute) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 1, {0});  // ORIGIN only; AS_PATH and NEXT_HOP missing
  expect_error(frame(kTypeUpdate, update_body({}, attrs, one_nlri())),
               ErrorCode::kUpdateMessage, kMissingWellKnownAttribute);
}

TEST(WireDecoder, RejectsNlriWithoutAttributes) {
  expect_error(frame(kTypeUpdate, update_body({}, {}, one_nlri())),
               ErrorCode::kUpdateMessage, kMissingWellKnownAttribute);
}

TEST(WireDecoder, RejectsWrongFlagClass) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x80, 1, {0});  // ORIGIN marked optional
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kAttributeFlagsError);
}

TEST(WireDecoder, RejectsOriginBadLength) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 1, {0, 0});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kAttributeLengthError);
}

TEST(WireDecoder, RejectsOriginBadValue) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 1, {3});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kInvalidOrigin);
}

TEST(WireDecoder, RejectsNextHopBadLength) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 3, {10, 0, 0});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kAttributeLengthError);
}

TEST(WireDecoder, RejectsInvalidNextHop) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 3, {0, 0, 0, 0});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kInvalidNextHop);
  attrs.clear();
  attr(attrs, 0x40, 3, {0xFF, 0xFF, 0xFF, 0xFF});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kInvalidNextHop);
}

TEST(WireDecoder, RejectsMedBadLength) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x80, 4, {0, 1});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kAttributeLengthError);
}

TEST(WireDecoder, RejectsCommunitiesBadLength) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0xC0, 8, {1, 2, 3, 4, 5, 6});  // not a multiple of 4
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kOptionalAttributeError);
}

TEST(WireDecoder, RejectsExtCommunitiesBadLength) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0xC0, 16, {1, 2, 3, 4});  // not a multiple of 8
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kOptionalAttributeError);
}

TEST(WireDecoder, RejectsClusterListBadLength) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x80, 10, {1, 2, 3});
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kAttributeLengthError);
}

TEST(WireDecoder, RejectsPrefixLengthOver32) {
  std::vector<std::uint8_t> nlri;
  be32(nlri, 1);
  nlri.push_back(33);
  expect_error(frame(kTypeUpdate, update_body({}, mandatory_attrs(), nlri)),
               ErrorCode::kUpdateMessage, kInvalidNetworkField);
}

TEST(WireDecoder, RejectsTruncatedNlri) {
  std::vector<std::uint8_t> nlri = {0, 0, 0};  // half a path-id
  expect_error(frame(kTypeUpdate, update_body({}, mandatory_attrs(), nlri)),
               ErrorCode::kUpdateMessage, kInvalidNetworkField);
  std::vector<std::uint8_t> nlri2;
  be32(nlri2, 1);
  nlri2.push_back(24);  // /24 needs 3 address bytes
  nlri2.push_back(10);
  expect_error(frame(kTypeUpdate, update_body({}, mandatory_attrs(), nlri2)),
               ErrorCode::kUpdateMessage, kInvalidNetworkField);
}

TEST(WireDecoder, RejectsMalformedAsPath) {
  std::vector<std::uint8_t> attrs;
  attr(attrs, 0x40, 2, {3, 1, 0, 0, 0, 1});  // segment type 3
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kMalformedAsPath);
  attrs.clear();
  attr(attrs, 0x40, 2, {2, 0});  // empty segment
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kMalformedAsPath);
  attrs.clear();
  attr(attrs, 0x40, 2, {2, 2, 0, 0, 0, 1});  // 2 ASNs claimed, 1 present
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kMalformedAsPath);
  attrs.clear();
  attr(attrs, 0x40, 2, {2});  // truncated segment header
  expect_error(frame(kTypeUpdate, update_body({}, attrs, {})),
               ErrorCode::kUpdateMessage, kMalformedAsPath);
}

TEST(WireDecoder, ReportsTrainOffsetInDecodeAll) {
  Encoder enc;
  UpdateMessage m;
  m.keepalive = true;
  const auto good = enc.encode(m);
  std::vector<std::uint8_t> in(good.begin(), good.end());
  const auto bad = frame(9, {});
  in.insert(in.end(), bad.begin(), bad.end());
  std::vector<DecodedUpdate> msgs;
  const auto err = decode_all(in, msgs);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->offset, 19u + 18u);  // type octet of the second message
  EXPECT_EQ(msgs.size(), 1u);         // first message was already parsed
}

}  // namespace
}  // namespace abrr::wire
