// §2.4: incremental TBRR -> ABRR transition with no service interruption.
#include "core/transition.h"

#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "trace/regenerator.h"
#include "verify/equivalence.h"

namespace abrr::core {
namespace {

using harness::Testbed;
using harness::TestbedOptions;

class TransitionTest : public ::testing::Test {
 protected:
  TransitionTest() {
    sim::Rng rng{17};
    topo::TopologyParams tp;
    tp.pops = 4;
    tp.clients_per_pop = 4;
    tp.peer_ases = 6;
    tp.peering_points_per_as = 3;
    topology = topo::make_tier1(tp, rng);
    trace::WorkloadParams wp;
    wp.prefixes = 200;
    workload = trace::Workload::generate(wp, topology, rng);
    prefixes = workload.prefixes();
  }

  TestbedOptions options(ibgp::IbgpMode mode) const {
    TestbedOptions o;
    o.mode = mode;
    o.num_aps = 4;
    o.mrai = 0;
    o.proc_delay = sim::msec(1);
    o.latency_jitter = sim::msec(2);
    return o;
  }

  // Loads the snapshot and converges.
  void load(Testbed& bed) {
    trace::RouteRegenerator regen{bed.scheduler(), workload,
                                  bed.inject_fn()};
    regen.load_snapshot(0, sim::sec(5));
    ASSERT_TRUE(bed.run_to_quiescence());
  }

  // Every client has a route for every prefix (no blackholes).
  void assert_full_reachability(Testbed& bed) {
    for (const bgp::RouterId id : bed.client_ids()) {
      for (const auto& p : prefixes) {
        ASSERT_NE(bed.speaker(id).loc_rib().best(p), nullptr)
            << "blackhole at " << id << " for " << p.to_string();
      }
    }
  }

  topo::Topology topology;
  trace::Workload workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
};

TEST_F(TransitionTest, DualStartsOnTbrrPlane) {
  Testbed dual{topology, options(ibgp::IbgpMode::kDual), prefixes};
  TransitionController controller{*dual.partition()};
  for (const bgp::RouterId id : dual.all_ids()) {
    controller.attach(dual.speaker(id));
  }
  load(dual);
  assert_full_reachability(dual);

  Testbed tbrr{topology, options(ibgp::IbgpMode::kTbrr), prefixes};
  load(tbrr);
  const auto eq = verify::compare_loc_ribs(dual, tbrr, prefixes);
  EXPECT_TRUE(eq.equivalent())
      << eq.divergence_count << "/" << eq.compared << " diverged";
}

TEST_F(TransitionTest, PerApCutoverKeepsFullReachability) {
  Testbed dual{topology, options(ibgp::IbgpMode::kDual), prefixes};
  TransitionController controller{*dual.partition()};
  for (const bgp::RouterId id : dual.all_ids()) {
    controller.attach(dual.speaker(id));
  }
  load(dual);

  for (ibgp::ApId ap = 0; ap < 4; ++ap) {
    controller.cutover(ap);
    ASSERT_TRUE(dual.run_to_quiescence());
    assert_full_reachability(dual);
    EXPECT_EQ(controller.cutover_count(), static_cast<std::size_t>(ap + 1));
  }
  EXPECT_TRUE(controller.complete());
}

TEST_F(TransitionTest, FullyCutOverDualMatchesPureAbrr) {
  Testbed dual{topology, options(ibgp::IbgpMode::kDual), prefixes};
  TransitionController controller{*dual.partition()};
  for (const bgp::RouterId id : dual.all_ids()) {
    controller.attach(dual.speaker(id));
  }
  load(dual);
  for (ibgp::ApId ap = 0; ap < 4; ++ap) {
    controller.cutover(ap);
    ASSERT_TRUE(dual.run_to_quiescence());
  }

  Testbed abrr{topology, options(ibgp::IbgpMode::kAbrr), prefixes};
  load(abrr);
  const auto eq = verify::compare_loc_ribs(dual, abrr, prefixes);
  EXPECT_TRUE(eq.equivalent())
      << eq.divergence_count << "/" << eq.compared << " diverged";
}

TEST_F(TransitionTest, RollbackRestoresTbrrChoice) {
  Testbed dual{topology, options(ibgp::IbgpMode::kDual), prefixes};
  TransitionController controller{*dual.partition()};
  for (const bgp::RouterId id : dual.all_ids()) {
    controller.attach(dual.speaker(id));
  }
  load(dual);

  // Snapshot the TBRR-plane choices.
  std::vector<bgp::RouterId> before;
  for (const auto& p : prefixes) {
    const auto* r =
        dual.speaker(dual.client_ids().front()).loc_rib().best(p);
    before.push_back(r ? r->egress() : bgp::kNoRouter);
  }

  controller.cutover(0);
  ASSERT_TRUE(dual.run_to_quiescence());
  controller.rollback(0);
  ASSERT_TRUE(dual.run_to_quiescence());
  EXPECT_FALSE(controller.is_cutover(0));

  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const auto* r =
        dual.speaker(dual.client_ids().front()).loc_rib().best(prefixes[i]);
    EXPECT_EQ(r ? r->egress() : bgp::kNoRouter, before[i]);
  }
}

TEST_F(TransitionTest, ControllerRejectsNonDualSpeakers) {
  Testbed tbrr{topology, options(ibgp::IbgpMode::kTbrr), prefixes};
  TransitionController controller{PartitionScheme::uniform(4)};
  EXPECT_THROW(controller.attach(tbrr.speaker(tbrr.client_ids().front())),
               std::invalid_argument);
}

}  // namespace
}  // namespace abrr::core
