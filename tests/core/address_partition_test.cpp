#include "core/address_partition.h"

#include <gtest/gtest.h>

namespace abrr::core {
namespace {

using bgp::parse_ipv4;

TEST(PartitionScheme, UniformCoversWholeSpaceContiguously) {
  for (const std::size_t n : {1u, 2u, 13u, 32u, 256u}) {
    const auto scheme = PartitionScheme::uniform(n);
    ASSERT_EQ(scheme.count(), n);
    EXPECT_EQ(scheme.ranges().front().first, 0u);
    EXPECT_EQ(scheme.ranges().back().last, 0xFFFFFFFFu);
    for (std::size_t i = 1; i < n; ++i) {
      EXPECT_EQ(scheme.ranges()[i].first, scheme.ranges()[i - 1].last + 1);
    }
  }
  EXPECT_THROW(PartitionScheme::uniform(0), std::invalid_argument);
}

TEST(PartitionScheme, UniformRangesEqualSized) {
  const auto scheme = PartitionScheme::uniform(16);
  const std::uint64_t expect = (1ULL << 32) / 16;
  for (const auto& r : scheme.ranges()) {
    EXPECT_EQ(static_cast<std::uint64_t>(r.last) - r.first + 1, expect);
  }
}

TEST(PartitionScheme, ApsOfSingleRange) {
  const auto scheme = PartitionScheme::uniform(16);  // /4-sized chunks
  // 10.0.0.0/8 sits inside the first /4 (0.0.0.0 - 15.255.255.255).
  const auto aps = scheme.aps_of(Ipv4Prefix::parse("10.0.0.0/8"));
  ASSERT_EQ(aps.size(), 1u);
  EXPECT_EQ(aps.front(), 0);
  // 240.0.0.0/8 is in the last chunk.
  EXPECT_EQ(scheme.aps_of(Ipv4Prefix::parse("240.0.0.0/8")).front(), 15);
}

TEST(PartitionScheme, PrefixSpanningBoundaryBelongsToBoth) {
  const auto scheme = PartitionScheme::uniform(16);
  // 0.0.0.0/3 spans chunks 0 and 1 (each chunk is a /4).
  const auto aps = scheme.aps_of(Ipv4Prefix::parse("0.0.0.0/3"));
  ASSERT_EQ(aps.size(), 2u);
  EXPECT_EQ(aps[0], 0);
  EXPECT_EQ(aps[1], 1);
  // 0.0.0.0/0 touches every AP.
  EXPECT_EQ(scheme.aps_of(Ipv4Prefix{0, 0}).size(), 16u);
}

TEST(PartitionScheme, MapperMatchesApsOf) {
  const auto scheme = PartitionScheme::uniform(8);
  const auto mapper = scheme.mapper();
  for (const auto& text : {"10.0.0.0/8", "128.0.0.0/3", "200.7.0.0/16"}) {
    const auto p = Ipv4Prefix::parse(text);
    EXPECT_EQ(mapper(p), scheme.aps_of(p)) << text;
  }
}

std::vector<Ipv4Prefix> clustered_prefixes() {
  // 3000 prefixes clustered in two /8s, mimicking the real skewed
  // allocation the paper discusses (§4.1).
  std::vector<Ipv4Prefix> out;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    out.emplace_back(parse_ipv4("10.0.0.0") + (i << 8), 24);
  }
  for (std::uint32_t i = 0; i < 1000; ++i) {
    out.emplace_back(parse_ipv4("200.0.0.0") + (i << 8), 24);
  }
  return out;
}

TEST(PartitionScheme, BalancedEqualisesPrefixCounts) {
  const auto prefixes = clustered_prefixes();
  const auto scheme = PartitionScheme::balanced(6, prefixes);
  ASSERT_EQ(scheme.count(), 6u);
  for (ApId ap = 0; ap < 6; ++ap) {
    const auto n = scheme.prefixes_in(ap, prefixes);
    EXPECT_NEAR(static_cast<double>(n), 500.0, 5.0) << "AP " << ap;
  }
}

TEST(PartitionScheme, UniformIsSkewedOnClusteredInput) {
  // Contrast: with uniform ranges the same workload is wildly skewed,
  // which is exactly the min/max variance of Figure 6.
  const auto prefixes = clustered_prefixes();
  const auto scheme = PartitionScheme::uniform(6);
  std::size_t max_n = 0, min_n = prefixes.size();
  for (ApId ap = 0; ap < 6; ++ap) {
    const auto n = scheme.prefixes_in(ap, prefixes);
    max_n = std::max(max_n, n);
    min_n = std::min(min_n, n);
  }
  EXPECT_EQ(min_n, 0u);
  EXPECT_GT(max_n, 1000u);
}

TEST(PartitionScheme, BalancedStillCoversWholeSpace) {
  const auto prefixes = clustered_prefixes();
  const auto scheme = PartitionScheme::balanced(4, prefixes);
  EXPECT_EQ(scheme.ranges().front().first, 0u);
  EXPECT_EQ(scheme.ranges().back().last, 0xFFFFFFFFu);
  for (std::size_t i = 1; i < scheme.count(); ++i) {
    EXPECT_EQ(scheme.ranges()[i].first, scheme.ranges()[i - 1].last + 1);
  }
}

TEST(PartitionScheme, BalancedFallsBackToUniformOnTinyInput) {
  const std::vector<Ipv4Prefix> two{Ipv4Prefix::parse("10.0.0.0/8"),
                                    Ipv4Prefix::parse("20.0.0.0/8")};
  const auto scheme = PartitionScheme::balanced(8, two);
  EXPECT_EQ(scheme.count(), 8u);
}

TEST(PartitionScheme, EveryPrefixMapsSomewhere) {
  // Property: for arbitrary prefixes, aps_of is never empty and all ids
  // are in range.
  const auto scheme = PartitionScheme::uniform(13);
  for (std::uint32_t a = 0; a < 256; a += 7) {
    const Ipv4Prefix p{a << 24, 8};
    const auto aps = scheme.aps_of(p);
    ASSERT_FALSE(aps.empty());
    for (const ApId ap : aps) {
      ASSERT_GE(ap, 0);
      ASSERT_LT(static_cast<std::size_t>(ap), scheme.count());
    }
  }
}

}  // namespace
}  // namespace abrr::core
