#include "trace/update_trace.h"

#include <gtest/gtest.h>

#include <map>

namespace abrr::trace {
namespace {

class UpdateTraceTest : public ::testing::Test {
 protected:
  UpdateTraceTest() {
    topo::TopologyParams tp;
    tp.pops = 4;
    tp.clients_per_pop = 4;
    tp.peer_ases = 5;
    tp.peering_points_per_as = 2;
    topo = topo::make_tier1(tp, rng);
    WorkloadParams wp;
    wp.prefixes = 500;
    workload = Workload::generate(wp, topo, rng);
  }
  sim::Rng rng{21};
  topo::Topology topo;
  Workload workload;
};

TEST_F(UpdateTraceTest, EventsAreSortedWithinDuration) {
  TraceParams p;
  p.duration = sim::sec(100);
  p.events_per_second = 10;
  const auto trace = UpdateTrace::generate(p, workload, rng);
  ASSERT_FALSE(trace.events().empty());
  sim::Time prev = 0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.at, prev);
    EXPECT_LT(e.at, p.duration);
    prev = e.at;
  }
}

TEST_F(UpdateTraceTest, RateRoughlyHonored) {
  TraceParams p;
  p.duration = sim::sec(200);
  p.events_per_second = 20;
  p.flap_fraction = 0;  // one event per arrival
  p.session_resets_per_hour = 0;
  const auto trace = UpdateTrace::generate(p, workload, rng);
  EXPECT_NEAR(static_cast<double>(trace.events().size()), 4000.0, 400.0);
}

TEST_F(UpdateTraceTest, FlapsComeInWithdrawReannouncePairs) {
  TraceParams p;
  p.duration = sim::sec(100);
  p.events_per_second = 10;
  p.flap_fraction = 1.0;
  p.flap_hold = sim::sec(5);
  const auto trace = UpdateTrace::generate(p, workload, rng);
  std::size_t withdraws = 0, reannounces = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == EventKind::kWithdraw) ++withdraws;
    if (e.kind == EventKind::kReannounce) ++reannounces;
  }
  EXPECT_GT(withdraws, 0u);
  // Every withdraw has its re-announce unless cut off by trace end.
  EXPECT_GE(reannounces, withdraws * 9 / 10);
  EXPECT_LE(reannounces, withdraws);
}

TEST_F(UpdateTraceTest, ZipfSkewsEventsTowardFewPrefixes) {
  TraceParams p;
  p.duration = sim::sec(500);
  p.events_per_second = 20;
  p.zipf_s = 1.2;
  p.session_resets_per_hour = 0;
  const auto trace = UpdateTrace::generate(p, workload, rng);
  std::map<std::uint32_t, std::size_t> per_prefix;
  for (const auto& e : trace.events()) ++per_prefix[e.prefix_idx];
  // The busiest prefix sees far more events than the median.
  std::vector<std::size_t> counts;
  for (const auto& [idx, n] : per_prefix) counts.push_back(n);
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back(),
            4 * std::max<std::size_t>(counts[counts.size() / 2], 1));
}

TEST_F(UpdateTraceTest, EventsReferenceAnnouncingAses) {
  TraceParams p;
  p.duration = sim::sec(50);
  p.events_per_second = 10;
  const auto trace = UpdateTrace::generate(p, workload, rng);
  for (const auto& e : trace.events()) {
    const auto& entry = workload.table()[e.prefix_idx];
    const bool found = std::any_of(
        entry.anns.begin(), entry.anns.end(),
        [&](const Announcement& a) { return a.first_as == e.peer_as; });
    ASSERT_TRUE(found) << "event references non-announcing AS";
  }
}

TEST_F(UpdateTraceTest, SessionResetsWithdrawWholePoint) {
  TraceParams p;
  p.duration = sim::sec(600);
  p.events_per_second = 0.001;  // isolate resets
  p.session_resets_per_hour = 30;
  const auto trace = UpdateTrace::generate(p, workload, rng);
  ASSERT_FALSE(trace.events().empty());
  // Group withdraws by (time, point): each group must cover every
  // prefix announced at that point.
  std::map<std::tuple<sim::Time, RouterId, Asn>, std::size_t> bursts;
  for (const auto& e : trace.events()) {
    if (e.kind != EventKind::kWithdraw) continue;
    ASSERT_NE(e.point_router, bgp::kNoRouter);
    ++bursts[{e.at, e.point_router, e.peer_as}];
  }
  ASSERT_FALSE(bursts.empty());
  for (const auto& [key, count] : bursts) {
    const auto [at, router, peer_as] = key;
    std::size_t expected = 0;
    for (const auto& entry : workload.table()) {
      for (const auto& a : entry.anns) {
        if (a.router == router && a.first_as == peer_as) {
          ++expected;
          break;
        }
      }
    }
    EXPECT_EQ(count, expected);
  }
}

TEST_F(UpdateTraceTest, SessionResetsCanBeDisabled) {
  TraceParams p;
  p.duration = sim::sec(600);
  p.events_per_second = 0.001;
  p.session_resets_per_hour = 0;
  const auto trace = UpdateTrace::generate(p, workload, rng);
  for (const auto& e : trace.events()) {
    EXPECT_NE(e.kind, EventKind::kWithdraw);
  }
}

TEST_F(UpdateTraceTest, EmptyWorkloadProducesNoEvents) {
  const Workload empty = Workload::from_parts({}, {});
  const auto trace = UpdateTrace::generate({}, empty, rng);
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace abrr::trace
