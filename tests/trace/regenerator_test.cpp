#include "trace/regenerator.h"

#include <gtest/gtest.h>

#include <map>

namespace abrr::trace {
namespace {

struct Injection {
  RouterId router;
  RouterId neighbor;
  Ipv4Prefix prefix;
  bool announce;
  sim::Time at;
};

class RegeneratorTest : public ::testing::Test {
 protected:
  RegeneratorTest() {
    topo::TopologyParams tp;
    tp.pops = 3;
    tp.clients_per_pop = 3;
    tp.peer_ases = 4;
    tp.peering_points_per_as = 2;
    topo = topo::make_tier1(tp, rng);
    WorkloadParams wp;
    wp.prefixes = 100;
    workload = Workload::generate(wp, topo, rng);
  }

  InjectFn recorder() {
    return [this](RouterId router, RouterId neighbor, const Ipv4Prefix& p,
                  const std::optional<bgp::Route>& route) {
      log.push_back(
          Injection{router, neighbor, p, route.has_value(), sched.now()});
    };
  }

  sim::Rng rng{5};
  sim::Scheduler sched;
  topo::Topology topo;
  Workload workload;
  std::vector<Injection> log;
};

TEST_F(RegeneratorTest, SnapshotLoadInjectsEveryAnnouncement) {
  std::size_t expected = 0;
  for (const auto& e : workload.table()) expected += e.anns.size();

  RouteRegenerator regen{sched, workload, recorder()};
  regen.load_snapshot(0, sim::sec(10));
  sched.run_to_quiescence();
  EXPECT_EQ(log.size(), expected);
  EXPECT_EQ(regen.injected(), expected);
  for (const auto& i : log) EXPECT_TRUE(i.announce);
}

TEST_F(RegeneratorTest, SnapshotLoadIsPacedOverTheWindow) {
  RouteRegenerator regen{sched, workload, recorder()};
  regen.load_snapshot(sim::sec(1), sim::sec(10));
  sched.run_to_quiescence();
  ASSERT_FALSE(log.empty());
  EXPECT_GE(log.front().at, sim::sec(1));
  EXPECT_LE(log.back().at, sim::sec(11));
  // Spread, not a single burst.
  EXPECT_GT(log.back().at - log.front().at, sim::sec(5));
}

TEST_F(RegeneratorTest, WithdrawEventsWithdrawEveryPointOfTheAs) {
  RouteRegenerator regen{sched, workload, recorder()};
  const auto& entry = workload.table().front();
  const Asn as = entry.anns.front().first_as;
  std::size_t points = 0;
  for (const auto& a : entry.anns) points += a.first_as == as ? 1 : 0;

  UpdateTrace trace = UpdateTrace::from_events(
      {TraceEvent{sim::sec(1), EventKind::kWithdraw, 0, as}}, sim::sec(2));
  regen.play(trace, 0);
  sched.run_to_quiescence();
  EXPECT_EQ(log.size(), points);
  for (const auto& i : log) {
    EXPECT_FALSE(i.announce);
    EXPECT_EQ(i.prefix, entry.prefix);
  }
}

TEST_F(RegeneratorTest, MedChangeReannouncesWithNewMed) {
  RouteRegenerator regen{sched, workload, recorder()};
  const auto& entry = workload.table().front();
  const Asn as = entry.anns.front().first_as;
  UpdateTrace trace = UpdateTrace::from_events(
      {TraceEvent{sim::sec(1), EventKind::kMedChange, 0, as}}, sim::sec(2));
  regen.play(trace, 0);
  sched.run_to_quiescence();
  ASSERT_FALSE(log.empty());
  for (const auto& i : log) EXPECT_TRUE(i.announce);
  // The regenerator's working copy reflects the mutation.
  const auto& mutated = regen.current().table().front();
  EXPECT_EQ(mutated.prefix, entry.prefix);
}

TEST_F(RegeneratorTest, SpeedupCompressesReplay) {
  RouteRegenerator regen{sched, workload, recorder()};
  UpdateTrace trace = UpdateTrace::from_events(
      {TraceEvent{sim::sec(100), EventKind::kWithdraw, 0,
                  workload.table().front().anns.front().first_as}},
      sim::sec(200));
  regen.play(trace, 0, /*speedup=*/10.0);
  sched.run_to_quiescence();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front().at, sim::sec(10));
}

TEST_F(RegeneratorTest, DownStateTracksWithdrawals) {
  RouteRegenerator regen{sched, workload, recorder()};
  const auto& entry = workload.table().front();
  const Asn as = entry.anns.front().first_as;

  // Withdraw at t=1s: the regenerator's edge view must exclude the
  // withdrawn announcements from ground-truth queries.
  UpdateTrace down = UpdateTrace::from_events(
      {TraceEvent{sim::sec(1), EventKind::kWithdraw, 0, as}}, sim::sec(10));
  regen.play(down, 0);
  sched.run_to_quiescence();
  const auto& after = regen.current().table().front();
  for (const auto& a : after.anns) {
    EXPECT_EQ(a.down, a.first_as == as);
  }
  const auto set = regen.current().best_as_level_for(after, {}, true);
  for (const auto& r : set) {
    EXPECT_NE(r.attrs->as_path.first(), as);
  }

  // Re-announce: the state comes back.
  UpdateTrace up = UpdateTrace::from_events(
      {TraceEvent{sim::sec(2), EventKind::kReannounce, 0, as}},
      sim::sec(10));
  regen.play(up, sched.now());
  sched.run_to_quiescence();
  for (const auto& a : regen.current().table().front().anns) {
    EXPECT_FALSE(a.down);
  }
}

TEST_F(RegeneratorTest, RejectsBadArguments) {
  EXPECT_THROW(RouteRegenerator(sched, workload, nullptr),
               std::invalid_argument);
  RouteRegenerator regen{sched, workload, recorder()};
  EXPECT_THROW(regen.play(UpdateTrace{}, 0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace abrr::trace
