#include "trace/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace abrr::trace {
namespace {

topo::Topology tier1(sim::Rng& rng) {
  topo::TopologyParams tp;
  tp.pops = 13;
  tp.clients_per_pop = 8;
  tp.peering_router_fraction = 1.0;
  tp.peer_ases = 25;
  tp.peering_points_per_as = 8;
  tp.peering_skew = 0.8;
  return topo::make_tier1(tp, rng);
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : topo(tier1(rng)) {
    WorkloadParams wp;
    wp.prefixes = 3000;
    workload = Workload::generate(wp, topo, rng);
  }
  sim::Rng rng{42};
  topo::Topology topo;
  Workload workload;
};

TEST_F(WorkloadTest, GeneratesRequestedPrefixCount) {
  EXPECT_EQ(workload.prefix_count(), 3000u);
  const auto prefixes = workload.prefixes();
  const std::set<bgp::Ipv4Prefix> unique(prefixes.begin(), prefixes.end());
  EXPECT_EQ(unique.size(), 3000u);  // all distinct
}

TEST_F(WorkloadTest, PeerFractionRoughlyHonored) {
  std::size_t peers = 0;
  for (const auto& e : workload.table()) peers += e.from_peers ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(peers) / 3000.0, 0.76, 0.03);
}

TEST_F(WorkloadTest, EveryPrefixIsAnnouncedSomewhere) {
  for (const auto& e : workload.table()) {
    ASSERT_FALSE(e.anns.empty()) << e.prefix.to_string();
  }
}

TEST_F(WorkloadTest, PeerRoutesLandOnPeeringRoutersWithPeerLocalPref) {
  const auto peering = topo.peering_routers();
  const std::set<bgp::RouterId> peering_set(peering.begin(), peering.end());
  for (const auto& e : workload.table()) {
    for (const auto& a : e.anns) {
      if (e.from_peers) {
        EXPECT_TRUE(peering_set.count(a.router)) << e.prefix.to_string();
        EXPECT_EQ(a.local_pref, workload.params().peer_local_pref);
      } else {
        EXPECT_EQ(a.local_pref, workload.params().customer_local_pref);
      }
    }
  }
}

TEST_F(WorkloadTest, AnnouncingAsUsesAllItsPeeringPoints) {
  // A peer AS that carries a prefix announces at every one of its
  // peering points (§3.1: ~8 points per AS).
  const auto& entry = *std::find_if(
      workload.table().begin(), workload.table().end(),
      [](const PrefixEntry& e) { return e.from_peers; });
  std::map<bgp::Asn, std::size_t> per_as;
  for (const auto& a : entry.anns) ++per_as[a.first_as];
  for (const auto& [as, n] : per_as) {
    EXPECT_EQ(n, topo.points_of(as).size()) << "AS " << as;
  }
}

TEST_F(WorkloadTest, ToRouteSynthesizesConsistentPath) {
  const auto& entry = workload.table().front();
  const auto& a = entry.anns.front();
  const bgp::Route r = a.to_route(entry.prefix);
  EXPECT_EQ(r.prefix, entry.prefix);
  EXPECT_EQ(r.attrs->as_path.length(), a.path_length);
  EXPECT_EQ(r.attrs->as_path.first(), a.first_as);
  EXPECT_EQ(r.egress(), a.router);  // next-hop-self
  EXPECT_EQ(r.via, bgp::LearnedVia::kEbgp);
}

TEST_F(WorkloadTest, CalibrationMatchesPaperAt25PeerAses) {
  // §4: 10.2 best AS-level routes per prefix from peer ASes.
  const auto point = workload.average_bal(topo, 25, rng);
  EXPECT_NEAR(point.peer_only, 10.2, 1.0);
  // "All Sources" sits below "Peer ASes Only": customer prefixes add
  // little diversity (Figure 3).
  EXPECT_LT(point.all_sources, point.peer_only);
  EXPECT_GT(point.all_sources, 5.0);
}

TEST_F(WorkloadTest, BalGrowsWithPeerAses) {
  // Figure 3's monotone growth.
  double prev = 0;
  for (const std::size_t n : {1u, 5u, 10u, 18u, 25u}) {
    const auto point = workload.average_bal(topo, n, rng);
    EXPECT_GT(point.peer_only, prev * 0.95) << n;  // allow sample noise
    prev = point.peer_only;
  }
  EXPECT_GT(prev, 5.0);
}

TEST_F(WorkloadTest, CustomerRoutesDominateWhenPresent) {
  // Customer local-pref (100) beats peer local-pref (80): a customer
  // prefix's best AS-level set contains only customer routes.
  for (const auto& e : workload.table()) {
    if (e.from_peers) continue;
    const auto set =
        workload.best_as_level_for(e, {}, /*include_customers=*/true);
    ASSERT_FALSE(set.empty());
    EXPECT_LE(set.size(), workload.params().max_customer_attachments);
    break;
  }
}

TEST_F(WorkloadTest, BestAsLevelRespectsSelectedPeerSubset) {
  const auto& entry = *std::find_if(
      workload.table().begin(), workload.table().end(),
      [](const PrefixEntry& e) { return e.from_peers && e.anns.size() > 8; });
  const std::vector<bgp::Asn> one{entry.anns.front().first_as};
  const auto subset = workload.best_as_level_for(entry, one, false);
  for (const auto& r : subset) {
    EXPECT_EQ(r.attrs->as_path.first(), one.front());
  }
  const auto all = workload.best_as_level_for(entry, {}, false);
  EXPECT_GE(all.size(), subset.size());
}

TEST_F(WorkloadTest, RejectsOversizedPeerSelection) {
  EXPECT_THROW(workload.average_bal(topo, 26, rng), std::invalid_argument);
}

}  // namespace
}  // namespace abrr::trace
