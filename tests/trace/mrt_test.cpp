#include "trace/mrt.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <span>
#include <vector>

#include "wire/codec.h"

namespace abrr::trace {
namespace {

class MrtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path = ::testing::TempDir() + "abrr_mrt_test.bin";
    sim::Rng rng{7};
    topo::TopologyParams tp;
    tp.pops = 4;
    tp.clients_per_pop = 4;
    tp.peer_ases = 5;
    tp.peering_points_per_as = 2;
    topo = topo::make_tier1(tp, rng);
    WorkloadParams wp;
    wp.prefixes = 200;
    workload = Workload::generate(wp, topo, rng);
    TraceParams trp;
    trp.duration = sim::sec(60);
    trp.events_per_second = 5;
    trace = UpdateTrace::generate(trp, workload, rng);
  }
  void TearDown() override { std::remove(path.c_str()); }

  std::string path;
  topo::Topology topo;
  Workload workload;
  UpdateTrace trace;
};

TEST_F(MrtTest, RoundTripsSnapshotExactly) {
  write_mrt(path, workload, trace);
  const MrtFile file = read_mrt(path);

  ASSERT_EQ(file.workload.table().size(), workload.table().size());
  for (std::size_t i = 0; i < workload.table().size(); ++i) {
    const auto& a = workload.table()[i];
    const auto& b = file.workload.table()[i];
    ASSERT_EQ(a.prefix, b.prefix);
    ASSERT_EQ(a.from_peers, b.from_peers);
    ASSERT_EQ(a.anns.size(), b.anns.size());
    for (std::size_t k = 0; k < a.anns.size(); ++k) {
      EXPECT_EQ(a.anns[k].router, b.anns[k].router);
      EXPECT_EQ(a.anns[k].neighbor, b.anns[k].neighbor);
      EXPECT_EQ(a.anns[k].first_as, b.anns[k].first_as);
      EXPECT_EQ(a.anns[k].origin_as, b.anns[k].origin_as);
      EXPECT_EQ(a.anns[k].path_length, b.anns[k].path_length);
      EXPECT_EQ(a.anns[k].med, b.anns[k].med);
      EXPECT_EQ(a.anns[k].local_pref, b.anns[k].local_pref);
    }
  }
  EXPECT_EQ(file.workload.params().prefixes, workload.params().prefixes);
  EXPECT_DOUBLE_EQ(file.workload.params().path_tie_prob,
                   workload.params().path_tie_prob);
}

TEST_F(MrtTest, RoundTripsTraceExactly) {
  write_mrt(path, workload, trace);
  const MrtFile file = read_mrt(path);
  ASSERT_EQ(file.trace.events().size(), trace.events().size());
  EXPECT_EQ(file.trace.duration(), trace.duration());
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    EXPECT_EQ(file.trace.events()[i].at, trace.events()[i].at);
    EXPECT_EQ(file.trace.events()[i].kind, trace.events()[i].kind);
    EXPECT_EQ(file.trace.events()[i].prefix_idx, trace.events()[i].prefix_idx);
    EXPECT_EQ(file.trace.events()[i].peer_as, trace.events()[i].peer_as);
  }
}

// ABMRT v2 stores each announcement's attributes as the wire codec's
// RFC 4271 path-attribute block — there is exactly one attribute
// parser in the repo. This pins the unification: the scalar projections
// the workload consumes must equal what the wire decoder extracts from
// the block the wire encoder produced, for every announcement. Any
// drift between trace-plane and message-plane attribute handling shows
// up here before it shows up as a divergent experiment.
TEST_F(MrtTest, AttributeBlocksMatchWireCodecExactly) {
  write_mrt(path, workload, trace);
  const MrtFile file = read_mrt(path);

  std::vector<std::uint8_t> block;
  for (std::size_t i = 0; i < workload.table().size(); ++i) {
    const auto& entry = workload.table()[i];
    for (std::size_t k = 0; k < entry.anns.size(); ++k) {
      const auto& a = entry.anns[k];
      block.clear();
      wire::Encoder::append_path_attrs(*a.to_route(entry.prefix).attrs,
                                       block);
      ASSERT_FALSE(block.empty());
      ASSERT_EQ(block.size(), wire::Encoder::path_attrs_size(
                                  *a.to_route(entry.prefix).attrs));

      bgp::PathAttrs decoded;
      const auto err = wire::decode_path_attrs(
          std::span<const std::uint8_t>{block}, decoded,
          /*require_mandatory=*/true);
      ASSERT_FALSE(err.has_value()) << err->to_string();

      // The projections read_mrt derives from the block must equal the
      // ones that came through the file (and the originals).
      const auto& b = file.workload.table()[i].anns[k];
      EXPECT_EQ(decoded.next_hop, b.router);
      EXPECT_EQ(decoded.as_path.first(), b.first_as);
      EXPECT_EQ(decoded.as_path.length(), b.path_length);
      EXPECT_EQ(decoded.med, b.med);
      EXPECT_EQ(decoded.local_pref, b.local_pref);
    }
  }
}

TEST_F(MrtTest, EmptyTraceIsFine) {
  write_mrt(path, workload, UpdateTrace{});
  const MrtFile file = read_mrt(path);
  EXPECT_TRUE(file.trace.events().empty());
  EXPECT_EQ(file.workload.table().size(), workload.table().size());
}

TEST_F(MrtTest, RejectsMissingFile) {
  EXPECT_THROW(read_mrt(path + ".does-not-exist"), std::runtime_error);
}

TEST_F(MrtTest, RejectsBadMagic) {
  std::ofstream out{path, std::ios::binary};
  out << "NOT-AN-MRT-FILE-AT-ALL";
  out.close();
  EXPECT_THROW(read_mrt(path), std::runtime_error);
}

TEST_F(MrtTest, RejectsTruncation) {
  write_mrt(path, workload, trace);
  // Chop the file in half.
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::string data(size / 2, '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  EXPECT_THROW(read_mrt(path), std::runtime_error);
}

}  // namespace
}  // namespace abrr::trace
