// Salient-announcement extraction: the event generator targets routes
// that actually surface as iBGP activity.
#include <gtest/gtest.h>

#include "trace/workload.h"

namespace abrr::trace {
namespace {

PrefixEntry make_entry() {
  PrefixEntry entry;
  entry.prefix = bgp::Ipv4Prefix::parse("10.0.0.0/8");
  entry.from_peers = true;
  // AS 7001 at two points: lengths 3 and 4 (only the short one counts).
  // AS 7002 at one point: length 3 (ties at AS level).
  // AS 7003 at one point: length 5 (AS-level loser).
  Announcement a;
  a.local_pref = 80;
  a.origin_as = 30000;
  a.first_as = 7001;
  a.router = 1;
  a.neighbor = 0x80000001;
  a.path_length = 3;
  entry.anns.push_back(a);
  a.router = 2;
  a.neighbor = 0x80000002;
  a.path_length = 4;
  entry.anns.push_back(a);
  a.first_as = 7002;
  a.router = 3;
  a.neighbor = 0x80000003;
  a.path_length = 3;
  entry.anns.push_back(a);
  a.first_as = 7003;
  a.router = 4;
  a.neighbor = 0x80000004;
  a.path_length = 5;
  entry.anns.push_back(a);
  return entry;
}

TEST(Salience, PicksAsLevelBestBackers) {
  const Workload w = Workload::from_parts({}, {make_entry()});
  const auto salient = w.salient_indices(w.table().front());
  // Expect exactly the two length-3 announcements (indices 0 and 2).
  ASSERT_EQ(salient.size(), 2u);
  EXPECT_EQ(salient[0], 0u);
  EXPECT_EQ(salient[1], 2u);
}

TEST(Salience, SameRouterMultipleSessionsKeepsTheBest) {
  PrefixEntry entry = make_entry();
  // Give router 1 a second, longer session route from another AS; the
  // router advertises only its best, so only index 0 stays salient for
  // router 1.
  Announcement extra = entry.anns.front();
  extra.first_as = 7004;
  extra.neighbor = 0x80000009;
  extra.path_length = 6;
  entry.anns.push_back(extra);
  const Workload w = Workload::from_parts({}, {entry});
  const auto salient = w.salient_indices(w.table().front());
  for (const auto idx : salient) {
    EXPECT_NE(w.table().front().anns[idx].path_length, 6);
  }
}

TEST(Salience, FallsBackWhenSetUnmappable) {
  // Single announcement: trivially salient.
  PrefixEntry entry;
  entry.prefix = bgp::Ipv4Prefix::parse("10.0.0.0/8");
  Announcement a;
  a.first_as = 7001;
  a.router = 1;
  a.neighbor = 0x80000001;
  a.path_length = 2;
  entry.anns.push_back(a);
  const Workload w = Workload::from_parts({}, {entry});
  EXPECT_EQ(w.salient_indices(w.table().front()).size(), 1u);
}

}  // namespace
}  // namespace abrr::trace
