// Chaos soak + the deterministic-replay contract: a seeded random
// schedule of mixed faults must (a) leave the bed provably full-mesh-
// equivalent once every outage is over, and (b) reproduce bit-identical
// event counts and RIB fingerprints when replayed from the same seed.
#include "fault/recovery.h"

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "fault/schedule.h"
#include "fault_scenario.h"

namespace abrr::fault {
namespace {

using testing::Bed;
using testing::make_baseline;
using testing::make_bed;

constexpr sim::Time kHold = sim::sec(2);

ChaosParams chaos_params() {
  ChaosParams p;
  p.events = 12;
  p.start = sim::sec(11);
  p.horizon = sim::sec(40);
  p.min_duration = sim::msec(500);
  p.max_duration = sim::sec(6);
  p.burst_loss = 0.3;
  return p;
}

struct RunResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t events_executed = 0;
  InjectorCounters counters;
  std::uint64_t dropped = 0;
};

/// One complete chaos run from fixed seeds, in the given mode.
RunResult chaos_run(ibgp::IbgpMode mode, std::uint64_t chaos_seed) {
  Bed bed = make_bed(mode, kHold);
  // Crash candidates: every speaker. Session targets: every session.
  sim::Rng chaos_rng{chaos_seed};
  const auto schedule =
      FaultSchedule::chaos(chaos_params(), bed->all_ids(),
                           bed->network().sessions(), chaos_rng);

  FaultInjector injector{*bed, schedule};
  injector.set_resync(make_workload_resync(*bed, *bed.regen));
  injector.arm();
  bed->run_until(injector.last_event_end() + sim::sec(40));

  RunResult r;
  r.fingerprint = rib_fingerprint(*bed);
  r.events_executed = bed->scheduler().events_executed();
  r.counters = injector.counters();
  r.dropped = bed->network().total_dropped();

  // The schedule is intact-topology by construction (every crash has a
  // restart); prove full recovery.
  Bed baseline = make_baseline();
  const auto report =
      verify_recovery(*bed, *baseline, testing::scenario().prefixes);
  EXPECT_TRUE(report.ok())
      << "mode=" << static_cast<int>(mode) << " seed=" << chaos_seed << ": "
      << report.equivalence.divergence_count << " divergences, "
      << report.forwarding.loops << " loops";
  return r;
}

TEST(RecoveryTest, AbrrChaosRunRecoversAndReplaysBitIdentically) {
  const RunResult a = chaos_run(ibgp::IbgpMode::kAbrr, 1001);
  const RunResult b = chaos_run(ibgp::IbgpMode::kAbrr, 1001);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.events_fired, b.counters.events_fired);
  EXPECT_EQ(a.counters.crashes, b.counters.crashes);
  EXPECT_EQ(a.counters.restarts, b.counters.restarts);
  EXPECT_EQ(a.counters.repairs, b.counters.repairs);
  EXPECT_EQ(a.counters.resync_routes, b.counters.resync_routes);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_GT(a.counters.events_fired, 0u);
}

TEST(RecoveryTest, DifferentChaosSeedsDiverge) {
  const RunResult a = chaos_run(ibgp::IbgpMode::kAbrr, 1001);
  const RunResult c = chaos_run(ibgp::IbgpMode::kAbrr, 2002);
  // Different fault sequences: the runs must not be secretly coupled.
  EXPECT_NE(a.events_executed, c.events_executed);
}

TEST(RecoveryTest, DualModeChaosRunRecovers) {
  (void)chaos_run(ibgp::IbgpMode::kDual, 3003);
}

TEST(RecoveryTest, FingerprintReflectsRibContent) {
  Bed a = make_bed(ibgp::IbgpMode::kAbrr, /*hold_time=*/0);
  Bed b = make_bed(ibgp::IbgpMode::kAbrr, /*hold_time=*/0);
  EXPECT_EQ(rib_fingerprint(*a), rib_fingerprint(*b));

  // Wipe one speaker's Loc-RIB: the fingerprint must move.
  a->speaker(a->client_ids().front()).crash();
  EXPECT_NE(rib_fingerprint(*a), rib_fingerprint(*b));
}

}  // namespace
}  // namespace abrr::fault
