#include "fault/schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace abrr::fault {
namespace {

using Link = std::pair<bgp::RouterId, bgp::RouterId>;

const std::vector<bgp::RouterId> kRouters = {1, 2, 3, 10, 11};
const std::vector<Link> kLinks = {{1, 10}, {1, 11}, {2, 10}, {2, 11}};

TEST(FaultScheduleTest, ChaosIsDeterministicPerSeed) {
  ChaosParams p;
  p.events = 40;
  sim::Rng a{123}, b{123}, c{124};
  const auto sched_a = FaultSchedule::chaos(p, kRouters, kLinks, a);
  const auto sched_b = FaultSchedule::chaos(p, kRouters, kLinks, b);
  const auto sched_c = FaultSchedule::chaos(p, kRouters, kLinks, c);
  EXPECT_EQ(sched_a.to_text(), sched_b.to_text());
  EXPECT_NE(sched_a.to_text(), sched_c.to_text());
  EXPECT_EQ(sched_a.size(), 40u);
}

TEST(FaultScheduleTest, ChaosRespectsBounds) {
  ChaosParams p;
  p.events = 100;
  p.start = sim::sec(2);
  p.horizon = sim::sec(20);
  p.min_duration = sim::msec(100);
  p.max_duration = sim::sec(1);
  sim::Rng rng{9};
  const auto sched = FaultSchedule::chaos(p, kRouters, kLinks, rng);
  bool saw_crash = false, saw_link_fault = false;
  for (const FaultEvent& ev : sched.events()) {
    EXPECT_GE(ev.at, p.start);
    EXPECT_LE(ev.at, p.horizon);
    EXPECT_GE(ev.duration, p.min_duration);
    EXPECT_LE(ev.duration, p.max_duration);
    if (ev.kind == FaultKind::kRouterCrash) {
      saw_crash = true;
      EXPECT_NE(std::find(kRouters.begin(), kRouters.end(), ev.a),
                kRouters.end());
    } else {
      saw_link_fault = true;
      EXPECT_NE(std::find(kLinks.begin(), kLinks.end(), Link{ev.a, ev.b}),
                kLinks.end());
    }
    if (ev.kind == FaultKind::kDelayBurst) {
      EXPECT_GT(ev.extra_delay, 0);
    }
    if (ev.kind == FaultKind::kLossBurst) {
      EXPECT_GT(ev.loss_prob, 0);
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_link_fault);
}

TEST(FaultScheduleTest, WeightsDisableKinds) {
  ChaosParams p;
  p.events = 50;
  p.crash_weight = 0;
  p.loss_weight = 0;
  sim::Rng rng{5};
  const auto sched = FaultSchedule::chaos(p, kRouters, kLinks, rng);
  for (const FaultEvent& ev : sched.events()) {
    EXPECT_NE(ev.kind, FaultKind::kRouterCrash);
    EXPECT_NE(ev.kind, FaultKind::kLossBurst);
  }
}

TEST(FaultScheduleTest, TextRoundTrips) {
  ChaosParams p;
  p.events = 25;
  sim::Rng rng{77};
  const auto sched = FaultSchedule::chaos(p, kRouters, kLinks, rng);
  const std::string text = sched.to_text();
  const auto parsed = FaultSchedule::parse(text);
  ASSERT_EQ(parsed.size(), sched.size());
  EXPECT_EQ(parsed.to_text(), text);
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const FaultEvent& a = sched.events()[i];
    const FaultEvent& b = parsed.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.extra_delay, b.extra_delay);
    EXPECT_DOUBLE_EQ(a.loss_prob, b.loss_prob);
  }
}

TEST(FaultScheduleTest, ParseSkipsCommentsAndBlanks) {
  const auto sched = FaultSchedule::parse(
      "# a comment\n"
      "\n"
      "crash 1000000 2000000 10 0 0 0\n"
      "  # indented comment\n"
      "loss 5000000 1000000 1 10 0 0.25\n");
  ASSERT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched.events()[0].kind, FaultKind::kRouterCrash);
  EXPECT_EQ(sched.events()[0].a, 10u);
  EXPECT_EQ(sched.events()[1].kind, FaultKind::kLossBurst);
  EXPECT_DOUBLE_EQ(sched.events()[1].loss_prob, 0.25);
}

TEST(FaultScheduleTest, ParseRejectsGarbage) {
  EXPECT_THROW(FaultSchedule::parse("meteor 0 0 1 2 0 0\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("crash 0 0 1\n"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("loss 0 0 1 2 0 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("link -5 0 1 2 0 0\n"),
               std::invalid_argument);
}

TEST(FaultScheduleTest, ChaosValidatesInputs) {
  sim::Rng rng{1};
  ChaosParams p;
  p.horizon = p.start - 1;
  EXPECT_THROW(FaultSchedule::chaos(p, kRouters, kLinks, rng),
               std::invalid_argument);
  ChaosParams q;
  q.session_weight = q.crash_weight = q.link_weight = q.delay_weight =
      q.loss_weight = 0;
  EXPECT_THROW(FaultSchedule::chaos(q, kRouters, kLinks, rng),
               std::invalid_argument);
  ChaosParams r;  // crash events but no routers to crash
  r.events = 200;
  EXPECT_THROW(FaultSchedule::chaos(r, {}, kLinks, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace abrr::fault
