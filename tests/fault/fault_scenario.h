// Shared scenario for the fault-injection tests: one small Tier-1
// topology + workload (built once), helpers to spin up testbeds in any
// iBGP mode, and a converged full-mesh baseline to verify against.
#pragma once

#include <memory>
#include <vector>

#include "harness/testbed.h"
#include "topo/topology.h"
#include "trace/regenerator.h"
#include "trace/workload.h"

namespace abrr::fault::testing {

struct Scenario {
  topo::Topology topology;
  trace::Workload workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
};

inline const Scenario& scenario() {
  static const Scenario* s = [] {
    sim::Rng rng{31};
    topo::TopologyParams tp;
    tp.pops = 2;
    tp.clients_per_pop = 2;
    tp.peer_ases = 3;
    tp.peering_points_per_as = 2;
    auto topology = topo::make_tier1(tp, rng);

    trace::WorkloadParams wp;
    wp.prefixes = 48;
    auto workload = trace::Workload::generate(wp, topology, rng);

    auto* out = new Scenario{std::move(topology), std::move(workload), {}};
    out->prefixes = out->workload.prefixes();
    return out;
  }();
  return *s;
}

/// A testbed + its regenerator, with the initial snapshot loaded and
/// converged. hold_time > 0 arms failure detection (and keeps the event
/// queue alive, so such beds must advance with run_until, never
/// run_to_quiescence).
struct Bed {
  std::unique_ptr<harness::Testbed> bed;
  std::unique_ptr<trace::RouteRegenerator> regen;

  harness::Testbed& operator*() { return *bed; }
  harness::Testbed* operator->() { return bed.get(); }
};

inline Bed make_bed(ibgp::IbgpMode mode, sim::Time hold_time) {
  const Scenario& s = scenario();
  harness::TestbedOptions o;
  o.mode = mode;
  o.num_aps = 2;
  o.arrs_per_ap = 2;
  o.mrai = sim::msec(500);
  o.seed = 5;
  o.hold_time = hold_time;

  Bed out;
  out.bed = std::make_unique<harness::Testbed>(s.topology, o, s.prefixes);
  out.regen = std::make_unique<trace::RouteRegenerator>(
      out.bed->scheduler(), s.workload, out.bed->inject_fn());
  out.regen->load_snapshot(0, sim::sec(2));
  if (hold_time > 0) {
    out.bed->run_until(sim::sec(10));
  } else {
    out.bed->run_to_quiescence();
  }
  return out;
}

/// The untouched full-mesh reference (no timers, fully quiesced).
inline Bed make_baseline() {
  return make_bed(ibgp::IbgpMode::kFullMesh, /*hold_time=*/0);
}

}  // namespace abrr::fault::testing
