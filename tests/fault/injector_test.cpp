// Fault injector semantics against a live ABRR testbed: flaps, link
// outages, bursts and crashes, each followed by provable recovery.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include "fault/recovery.h"
#include "fault/schedule.h"
#include "fault_scenario.h"

namespace abrr::fault {
namespace {

using testing::Bed;
using testing::make_baseline;
using testing::make_bed;
using testing::scenario;

constexpr sim::Time kHold = sim::sec(2);

/// Arms `schedule` on an ABRR bed with hold timers, runs well past the
/// last outage, and returns the recovery report against full mesh.
RecoveryReport run_and_verify(Bed& bed, FaultSchedule schedule,
                              InjectorCounters* counters_out = nullptr) {
  FaultInjector injector{*bed, std::move(schedule)};
  injector.set_resync(make_workload_resync(*bed, *bed.regen));
  injector.arm();
  bed->run_until(injector.last_event_end() + sim::sec(30));
  if (counters_out) *counters_out = injector.counters();

  Bed baseline = make_baseline();
  return verify_recovery(*bed, *baseline, testing::scenario().prefixes);
}

TEST(FaultInjectorTest, SessionFlapRecoversToFullMeshState) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const auto sessions = bed->network().sessions();
  ASSERT_FALSE(sessions.empty());

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kSessionReset;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = sim::sec(3);
  ev.a = sessions.front().first;
  ev.b = sessions.front().second;
  schedule.add(ev);

  InjectorCounters c;
  const auto report = run_and_verify(bed, schedule, &c);
  EXPECT_EQ(c.session_resets, 1u);
  EXPECT_TRUE(report.ok()) << report.equivalence.divergence_count
                           << " divergences";
}

TEST(FaultInjectorTest, ShortLinkOutageIsInvisibleToBgp) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const auto sessions = bed->network().sessions();

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDown;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = sim::msec(300);  // well under the hold time
  ev.a = sessions.front().first;
  ev.b = sessions.front().second;
  schedule.add(ev);

  bed->reset_counters();
  InjectorCounters c;
  const auto report = run_and_verify(bed, schedule, &c);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(c.repairs, 0u);  // TCP rode it out: no session event at all
  for (const bgp::RouterId id : bed->all_ids()) {
    EXPECT_EQ(bed->delta_counters(id).hold_expirations, 0u);
  }
}

TEST(FaultInjectorTest, LongLinkOutageTriggersDetectionAndResync) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const auto sessions = bed->network().sessions();

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDown;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = 4 * kHold;  // both ends must time the session out
  ev.a = sessions.front().first;
  ev.b = sessions.front().second;
  schedule.add(ev);

  bed->reset_counters();
  InjectorCounters c;
  const auto report = run_and_verify(bed, schedule, &c);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(c.repairs, 1u);
  EXPECT_GE(bed->delta_counters(ev.a).hold_expirations +
                bed->delta_counters(ev.b).hold_expirations,
            1u);
}

TEST(FaultInjectorTest, LossBurstRepairsOnlyWhenMessagesWereLost) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const auto sessions = bed->network().sessions();

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kLossBurst;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = sim::sec(4);
  ev.a = sessions.front().first;
  ev.b = sessions.front().second;
  ev.loss_prob = 0.5;  // keepalives flow during the burst; some die
  schedule.add(ev);

  InjectorCounters c;
  const auto report = run_and_verify(bed, schedule, &c);
  EXPECT_EQ(c.bursts, 1u);
  EXPECT_TRUE(report.ok()) << report.equivalence.divergence_count
                           << " divergences";
  EXPECT_GT(bed->network().total_dropped(), 0u);
}

TEST(FaultInjectorTest, DelayBurstNeedsNoRepair) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const auto sessions = bed->network().sessions();

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kDelayBurst;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = sim::sec(2);
  ev.a = sessions.front().first;
  ev.b = sessions.front().second;
  ev.extra_delay = sim::msec(400);  // under the hold time: no expiry
  schedule.add(ev);

  InjectorCounters c;
  const auto report = run_and_verify(bed, schedule, &c);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(c.repairs, 0u);
}

TEST(FaultInjectorTest, BorderRouterCrashRestartResyncsEbgp) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const bgp::RouterId victim = bed->client_ids().front();

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kRouterCrash;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = 3 * kHold;
  ev.a = victim;
  schedule.add(ev);

  InjectorCounters c;
  const auto report = run_and_verify(bed, schedule, &c);
  EXPECT_EQ(c.crashes, 1u);
  EXPECT_EQ(c.restarts, 1u);
  EXPECT_GT(c.resync_routes, 0u);  // its eBGP feeds came back
  EXPECT_TRUE(report.ok()) << report.equivalence.divergence_count
                           << " divergences";
  EXPECT_TRUE(bed->speaker(victim).alive());
  EXPECT_GT(bed->speaker(victim).loc_rib().size(), 0u);
}

TEST(FaultInjectorTest, CrashShorterThanHoldTimeStillResyncs) {
  // Peers never notice the crash; the restart dance alone must restore
  // consistency (the restarted router lost everything).
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, kHold);
  const bgp::RouterId victim = bed->client_ids().front();

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kRouterCrash;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = sim::msec(500);
  ev.a = victim;
  schedule.add(ev);

  const auto report = run_and_verify(bed, schedule);
  EXPECT_TRUE(report.ok()) << report.equivalence.divergence_count
                           << " divergences";
}

TEST(FaultInjectorTest, ArmTwiceThrows) {
  Bed bed = make_bed(ibgp::IbgpMode::kAbrr, /*hold_time=*/0);
  FaultInjector injector{*bed, FaultSchedule{}};
  injector.arm();
  EXPECT_THROW(injector.arm(), std::logic_error);
}

}  // namespace
}  // namespace abrr::fault
