// ARR failover sweep: kill each reflector in turn (each ARR in the ABRR
// and dual beds, each TRR in the TBRR bed, a border router in the
// full-mesh bed), let the clients fail over to the redundant ARR, then
// restart it and prove the client Loc-RIBs re-equal the untouched
// full-mesh baseline — in every iBGP mode.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "fault/recovery.h"
#include "fault/schedule.h"
#include "fault_scenario.h"

namespace abrr::fault {
namespace {

using testing::Bed;
using testing::make_baseline;
using testing::make_bed;

constexpr sim::Time kHold = sim::sec(2);

class ArrFailoverTest : public ::testing::TestWithParam<ibgp::IbgpMode> {};

TEST_P(ArrFailoverTest, EachReflectorDeathRecoversToBaseline) {
  Bed bed = make_bed(GetParam(), kHold);
  // Reflectors where the mode has them; otherwise a border router, so
  // full mesh still exercises crash recovery.
  std::vector<bgp::RouterId> victims = bed->rr_ids();
  if (victims.empty()) victims.push_back(bed->client_ids().front());

  FaultSchedule schedule;
  sim::Time at = bed->scheduler().now() + sim::sec(1);
  for (const bgp::RouterId victim : victims) {
    FaultEvent ev;
    ev.kind = FaultKind::kRouterCrash;
    ev.at = at;
    ev.duration = 3 * kHold;  // long enough for hold-timer discovery
    ev.a = victim;
    schedule.add(ev);
    // Serialize the kills: each victim is dead alone, so redundancy is
    // what keeps the clients routing.
    at += ev.duration + sim::sec(10);
  }

  FaultInjector injector{*bed, schedule};
  injector.set_resync(make_workload_resync(*bed, *bed.regen));
  injector.arm();
  bed->run_until(injector.last_event_end() + sim::sec(30));

  ASSERT_EQ(injector.counters().crashes, victims.size());
  ASSERT_EQ(injector.counters().restarts, victims.size());

  Bed baseline = make_baseline();
  const auto report =
      verify_recovery(*bed, *baseline, testing::scenario().prefixes);
  EXPECT_TRUE(report.ok())
      << report.equivalence.divergence_count << " divergences, "
      << report.forwarding.loops << " forwarding loops";
}

TEST_P(ArrFailoverTest, ClientsKeepRoutingWhileOneArrIsDead) {
  const auto mode = GetParam();
  if (mode != ibgp::IbgpMode::kAbrr && mode != ibgp::IbgpMode::kDual) {
    GTEST_SKIP() << "redundant ARRs exist only in ABRR/dual beds";
  }
  Bed bed = make_bed(mode, kHold);
  auto& dir = bed->arr_directory();
  ASSERT_TRUE(dir.fully_redundant());

  // Kill the primary ARR of AP 0 and wait out the hold timers.
  const bgp::RouterId primary = dir.primary(0);
  ASSERT_NE(primary, bgp::kNoRouter);
  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kRouterCrash;
  ev.at = bed->scheduler().now() + sim::sec(1);
  ev.duration = sim::sec(20);
  ev.a = primary;
  schedule.add(ev);

  FaultInjector injector{*bed, schedule};
  injector.arm();
  bed->run_until(ev.at + sim::sec(15));  // mid-outage

  // Deterministic election moved the primary; the AP never went dark.
  EXPECT_FALSE(dir.alive(primary));
  EXPECT_NE(dir.primary(0), primary);
  EXPECT_NE(dir.primary(0), bgp::kNoRouter);
  EXPECT_TRUE(dir.fully_redundant());
  EXPECT_EQ(dir.failovers(), 1u);

  // Mid-outage, every client still has a full Loc-RIB: the redundant
  // ARR's copies cover the dead one's.
  const std::size_t want = testing::scenario().prefixes.size();
  for (const bgp::RouterId id : bed->client_ids()) {
    EXPECT_EQ(bed->speaker(id).loc_rib().size(), want) << "client " << id;
  }

  // After the restart the primary falls back (lowest id live again).
  bed->run_until(injector.last_event_end() + sim::sec(10));
  EXPECT_TRUE(dir.alive(primary));
  EXPECT_EQ(dir.primary(0), primary);
  EXPECT_EQ(dir.failovers(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ArrFailoverTest,
                         ::testing::Values(ibgp::IbgpMode::kFullMesh,
                                           ibgp::IbgpMode::kTbrr,
                                           ibgp::IbgpMode::kAbrr,
                                           ibgp::IbgpMode::kDual),
                         [](const auto& info) {
                           switch (info.param) {
                             case ibgp::IbgpMode::kFullMesh:
                               return "FullMesh";
                             case ibgp::IbgpMode::kTbrr:
                               return "Tbrr";
                             case ibgp::IbgpMode::kAbrr:
                               return "Abrr";
                             case ibgp::IbgpMode::kDual:
                               return "Dual";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace abrr::fault
