#include "bgp/rib.h"

#include <gtest/gtest.h>

namespace abrr::bgp {
namespace {

const Ipv4Prefix kP1 = Ipv4Prefix::parse("10.0.0.0/8");
const Ipv4Prefix kP2 = Ipv4Prefix::parse("20.0.0.0/8");

Route mk(const Ipv4Prefix& pfx, RouterId peer, PathId id, Asn first_as) {
  return RouteBuilder{pfx}
      .path_id(id)
      .as_path({first_as})
      .next_hop(id)
      .learned_from(peer, LearnedVia::kIbgp)
      .build();
}

TEST(AdjRibIn, AnnounceAddReplaceUnchanged) {
  AdjRibIn rib;
  EXPECT_EQ(rib.announce(mk(kP1, 5, 1, 100)), AdjRibIn::Change::kAdded);
  EXPECT_EQ(rib.announce(mk(kP1, 5, 1, 100)), AdjRibIn::Change::kUnchanged);
  EXPECT_EQ(rib.announce(mk(kP1, 5, 1, 101)), AdjRibIn::Change::kReplaced);
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.peer_size(5), 1u);
}

TEST(AdjRibIn, KeysByPeerAndPathId) {
  AdjRibIn rib;
  rib.announce(mk(kP1, 5, 1, 100));
  rib.announce(mk(kP1, 5, 2, 100));  // same peer, different path id
  rib.announce(mk(kP1, 6, 1, 100));  // different peer, same path id
  EXPECT_EQ(rib.size(), 3u);
  EXPECT_EQ(rib.routes_for(kP1).size(), 3u);
  EXPECT_EQ(rib.peer_size(5), 2u);
  EXPECT_EQ(rib.peer_size(6), 1u);
}

TEST(AdjRibIn, WithdrawSinglePath) {
  AdjRibIn rib;
  rib.announce(mk(kP1, 5, 1, 100));
  rib.announce(mk(kP1, 5, 2, 100));
  EXPECT_TRUE(rib.withdraw(5, kP1, 1));
  EXPECT_FALSE(rib.withdraw(5, kP1, 1));
  EXPECT_EQ(rib.size(), 1u);
}

TEST(AdjRibIn, WithdrawPrefixRemovesAllFromPeer) {
  AdjRibIn rib;
  rib.announce(mk(kP1, 5, 1, 100));
  rib.announce(mk(kP1, 5, 2, 100));
  rib.announce(mk(kP1, 6, 3, 100));
  EXPECT_EQ(rib.withdraw_prefix(5, kP1), 2u);
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.routes_for(kP1).front().learned_from, 6u);
}

TEST(AdjRibIn, WithdrawPeerReportsAffectedPrefixes) {
  AdjRibIn rib;
  rib.announce(mk(kP1, 5, 1, 100));
  rib.announce(mk(kP2, 5, 1, 100));
  rib.announce(mk(kP2, 6, 2, 100));
  const auto affected = rib.withdraw_peer(5);
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.peer_size(5), 0u);
}

TEST(AdjRibIn, RoutesForUnknownPrefixEmpty) {
  AdjRibIn rib;
  EXPECT_TRUE(rib.routes_for(kP1).empty());
}

TEST(AdjRibIn, RejectsInvalidRoute) {
  AdjRibIn rib;
  EXPECT_THROW(rib.announce(Route{}), std::invalid_argument);
}

TEST(LocRib, InstallDetectsChange) {
  LocRib rib;
  EXPECT_TRUE(rib.install(mk(kP1, 5, 1, 100)));
  EXPECT_FALSE(rib.install(mk(kP1, 5, 1, 100)));
  EXPECT_TRUE(rib.install(mk(kP1, 6, 1, 100)));  // different learned_from
  EXPECT_EQ(rib.size(), 1u);
  ASSERT_NE(rib.best(kP1), nullptr);
  EXPECT_EQ(rib.best(kP1)->learned_from, 6u);
  EXPECT_EQ(rib.best(kP2), nullptr);
  EXPECT_TRUE(rib.remove(kP1));
  EXPECT_FALSE(rib.remove(kP1));
}

TEST(AdjRibOut, FirstSetAnnouncesEverything) {
  AdjRibOut rib;
  const auto msg = rib.set(kP1, {mk(kP1, 5, 1, 100), mk(kP1, 6, 2, 100)},
                           /*full_set=*/true);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->full_set);
  EXPECT_EQ(msg->announce.size(), 2u);
  EXPECT_EQ(rib.size(), 2u);
}

TEST(AdjRibOut, UnchangedSetYieldsNothing) {
  AdjRibOut rib;
  rib.set(kP1, {mk(kP1, 5, 1, 100)}, true);
  EXPECT_FALSE(rib.set(kP1, {mk(kP1, 5, 1, 100)}, true).has_value());
  EXPECT_EQ(rib.size(), 1u);
}

TEST(AdjRibOut, DiffModeAnnouncesChangedWithdrawsRemoved) {
  AdjRibOut rib;
  rib.set(kP1, {mk(kP1, 5, 1, 100), mk(kP1, 6, 2, 100)}, false);
  const auto msg =
      rib.set(kP1, {mk(kP1, 5, 1, 101), mk(kP1, 7, 3, 100)}, false);
  ASSERT_TRUE(msg.has_value());
  // Path 1 changed attrs, path 3 is new, path 2 disappeared.
  EXPECT_EQ(msg->announce.size(), 2u);
  ASSERT_EQ(msg->withdraw.size(), 1u);
  EXPECT_EQ(msg->withdraw.front(), 2u);
  EXPECT_EQ(rib.size(), 2u);
}

TEST(AdjRibOut, EmptySetWithdrawsAll) {
  AdjRibOut rib;
  rib.set(kP1, {mk(kP1, 5, 1, 100)}, true);
  const auto msg = rib.set(kP1, {}, true);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->announce.empty());
  EXPECT_TRUE(msg->is_withdraw_only());
  EXPECT_EQ(rib.size(), 0u);
  EXPECT_EQ(rib.get(kP1), nullptr);
  // Withdrawing again is a no-op.
  EXPECT_FALSE(rib.set(kP1, {}, true).has_value());
}

TEST(AdjRibOut, CanonicalOrderIngoresInputOrder) {
  AdjRibOut a, b;
  a.set(kP1, {mk(kP1, 5, 1, 100), mk(kP1, 6, 2, 100)}, true);
  b.set(kP1, {mk(kP1, 6, 2, 100), mk(kP1, 5, 1, 100)}, true);
  EXPECT_FALSE(
      a.set(kP1, {mk(kP1, 6, 2, 100), mk(kP1, 5, 1, 100)}, true).has_value());
  ASSERT_NE(a.get(kP1), nullptr);
  EXPECT_EQ(a.get(kP1)->front().path_id, b.get(kP1)->front().path_id);
}

TEST(UpdateMessage, WireSizeScalesWithRoutes) {
  UpdateMessage one;
  one.prefix = kP1;
  one.announce = {mk(kP1, 5, 1, 100)};
  UpdateMessage ten = one;
  for (PathId i = 2; i <= 10; ++i) ten.announce.push_back(mk(kP1, 5, i, 100));
  // An update carrying 10 routes is roughly 10x longer (§4.2).
  EXPECT_GT(ten.wire_size(), 5 * one.wire_size());
  EXPECT_LT(ten.wire_size(), 15 * one.wire_size());
}

}  // namespace
}  // namespace abrr::bgp
