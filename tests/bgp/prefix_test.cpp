#include "bgp/prefix.h"

#include <gtest/gtest.h>

namespace abrr::bgp {
namespace {

TEST(Ipv4, FormatAndParseRoundTrip) {
  EXPECT_EQ(format_ipv4(0x0A000001), "10.0.0.1");
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0A000001u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_THROW(parse_ipv4("10.0.0"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("10.0.0.256"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("banana"), std::invalid_argument);
}

TEST(Ipv4Prefix, MasksHostBits) {
  const Ipv4Prefix p{0x0A0B0C0D, 16};
  EXPECT_EQ(p.address(), 0x0A0B0000u);
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.to_string(), "10.11.0.0/16");
}

TEST(Ipv4Prefix, ParseAndValidate) {
  const auto p = Ipv4Prefix::parse("192.168.4.0/22");
  EXPECT_EQ(p.length(), 22);
  EXPECT_EQ(p.address(), parse_ipv4("192.168.4.0"));
  EXPECT_THROW(Ipv4Prefix::parse("192.168.4.0"), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::parse("192.168.4.0/33"), std::invalid_argument);
  EXPECT_THROW((Ipv4Prefix{0, 40}), std::invalid_argument);
}

TEST(Ipv4Prefix, FirstLastMask) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.first(), parse_ipv4("10.0.0.0"));
  EXPECT_EQ(p.last(), parse_ipv4("10.255.255.255"));
  EXPECT_EQ(p.mask(), 0xFF000000u);

  const Ipv4Prefix all{0, 0};
  EXPECT_EQ(all.first(), 0u);
  EXPECT_EQ(all.last(), 0xFFFFFFFFu);
  EXPECT_EQ(all.mask(), 0u);

  const Ipv4Prefix host{parse_ipv4("1.2.3.4"), 32};
  EXPECT_EQ(host.first(), host.last());
}

TEST(Ipv4Prefix, Containment) {
  const auto outer = Ipv4Prefix::parse("10.0.0.0/8");
  const auto inner = Ipv4Prefix::parse("10.1.0.0/16");
  const auto other = Ipv4Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(other));
  EXPECT_TRUE(outer.contains(parse_ipv4("10.200.0.1")));
  EXPECT_FALSE(outer.contains(parse_ipv4("11.0.0.1")));
}

TEST(Ipv4Prefix, Overlap) {
  const auto a = Ipv4Prefix::parse("10.0.0.0/8");
  const auto b = Ipv4Prefix::parse("10.1.0.0/16");
  const auto c = Ipv4Prefix::parse("12.0.0.0/8");
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Ipv4Prefix, OrderingAndEquality) {
  const auto a = Ipv4Prefix::parse("10.0.0.0/8");
  const auto b = Ipv4Prefix::parse("10.0.0.0/16");
  const auto c = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);  // same address, shorter length first
}

TEST(Ipv4Prefix, HashDistinguishesLengths) {
  const std::hash<Ipv4Prefix> h;
  EXPECT_NE(h(Ipv4Prefix::parse("10.0.0.0/8")),
            h(Ipv4Prefix::parse("10.0.0.0/16")));
}

TEST(AddressRange, ContainsAndOverlaps) {
  const AddressRange r{parse_ipv4("10.0.0.0"), parse_ipv4("10.255.255.255")};
  EXPECT_TRUE(r.contains(parse_ipv4("10.5.0.1")));
  EXPECT_FALSE(r.contains(parse_ipv4("11.0.0.0")));
  EXPECT_TRUE(r.overlaps(Ipv4Prefix::parse("10.3.0.0/16")));
  // Prefix straddling the upper edge still overlaps.
  EXPECT_TRUE(r.overlaps(Ipv4Prefix::parse("10.0.0.0/7")));
  EXPECT_FALSE(r.overlaps(Ipv4Prefix::parse("11.0.0.0/8")));
}

}  // namespace
}  // namespace abrr::bgp
