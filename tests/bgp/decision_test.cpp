// Table 2 of the paper: the RFC 4271 decision process, and the
// "best AS-level routes" (steps 1-4) that ARRs compute.
#include "bgp/decision.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace abrr::bgp {
namespace {

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");

Route make(PathId id, std::uint32_t lp, std::vector<Asn> path, Origin origin,
           std::optional<std::uint32_t> med, LearnedVia via,
           RouterId learned_from, RouterId next_hop) {
  RouteBuilder b{kPfx};
  b.path_id(id)
      .local_pref(lp)
      .as_path(AsPath{std::move(path)})
      .origin(origin)
      .next_hop(next_hop)
      .learned_from(learned_from, via);
  if (med) b.med(*med);
  return b.build();
}

std::vector<PathId> ids(const std::vector<Route>& routes) {
  std::vector<PathId> out;
  for (const auto& r : routes) out.push_back(r.path_id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Decision, Step1HighestLocalPrefWins) {
  const std::vector<Route> routes{
      make(1, 80, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65002, 65003}, Origin::kIncomplete, {},
           LearnedVia::kIbgp, 12, 2),
  };
  EXPECT_EQ(select_best_no_igp(routes).path_id, 2u);
  EXPECT_EQ(ids(best_as_level_routes(routes)), (std::vector<PathId>{2}));
}

TEST(Decision, Step2ShorterAsPathWins) {
  const std::vector<Route> routes{
      make(1, 100, {65001, 65002}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65003}, Origin::kIgp, {}, LearnedVia::kIbgp, 12, 2),
  };
  EXPECT_EQ(select_best_no_igp(routes).path_id, 2u);
}

TEST(Decision, Step3LowerOriginWins) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIncomplete, {}, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65002}, Origin::kEgp, {}, LearnedVia::kIbgp, 12, 2),
      make(3, 100, {65003}, Origin::kIgp, {}, LearnedVia::kIbgp, 13, 3),
  };
  EXPECT_EQ(select_best_no_igp(routes).path_id, 3u);
}

TEST(Decision, Step4MedComparesOnlyWithinNeighborAs) {
  // Same neighbor AS 65001: MED decides. Different AS 65002: immune.
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, 20, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65001}, Origin::kIgp, 10, LearnedVia::kIbgp, 12, 2),
      make(3, 100, {65002}, Origin::kIgp, 99, LearnedVia::kIbgp, 13, 3),
  };
  // Route 1 loses to route 2 (same group); route 3 survives its own group.
  EXPECT_EQ(ids(best_as_level_routes(routes)), (std::vector<PathId>{2, 3}));
}

TEST(Decision, Step4AlwaysCompareMedIsGlobal) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, 20, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65002}, Origin::kIgp, 10, LearnedVia::kIbgp, 12, 2),
  };
  DecisionConfig cfg;
  cfg.always_compare_med = true;
  EXPECT_EQ(ids(best_as_level_routes(routes, cfg)), (std::vector<PathId>{2}));
  // Default (per-AS) keeps both.
  EXPECT_EQ(ids(best_as_level_routes(routes)), (std::vector<PathId>{1, 2}));
}

TEST(Decision, MissingMedDefaultsToBest) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65001}, Origin::kIgp, 5, LearnedVia::kIbgp, 12, 2),
  };
  EXPECT_EQ(ids(best_as_level_routes(routes)), (std::vector<PathId>{1}));
  DecisionConfig cfg;
  cfg.missing_med_as_worst = true;
  EXPECT_EQ(ids(best_as_level_routes(routes, cfg)), (std::vector<PathId>{2}));
}

TEST(Decision, IgnoreMedSkipsStep4) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, 20, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65001}, Origin::kIgp, 10, LearnedVia::kIbgp, 12, 2),
  };
  DecisionConfig cfg;
  cfg.ignore_med = true;
  EXPECT_EQ(ids(best_as_level_routes(routes, cfg)),
            (std::vector<PathId>{1, 2}));
}

TEST(Decision, Step5EbgpBeatsIbgp) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65002}, Origin::kIgp, {}, LearnedVia::kEbgp, 900, 50),
  };
  EXPECT_EQ(select_best_no_igp(routes).path_id, 2u);
}

TEST(Decision, Step6LowerIgpMetricWins) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 7),
      make(2, 100, {65002}, Origin::kIgp, {}, LearnedVia::kIbgp, 12, 8),
  };
  const IgpDistanceFn igp = [](RouterId nh) -> std::int64_t {
    return nh == 7 ? 100 : 10;
  };
  EXPECT_EQ(select_best(routes, 99, igp).path_id, 2u);
}

TEST(Decision, Step6NextHopSelfIsDistanceZero) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 7),
      make(2, 100, {65002}, Origin::kIgp, {}, LearnedVia::kIbgp, 12, 99),
  };
  const IgpDistanceFn igp = [](RouterId) -> std::int64_t { return 5; };
  EXPECT_EQ(select_best(routes, 99, igp).path_id, 2u);
}

TEST(Decision, UnreachableNextHopsYieldNoBest) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 11, 7),
  };
  const IgpDistanceFn igp = [](RouterId) { return kIgpInfinity; };
  EXPECT_FALSE(select_best(routes, 99, igp).valid());
}

TEST(Decision, Step7LowerOriginatorOrPeerWins) {
  const std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, {}, LearnedVia::kIbgp, 30, 1),
      make(2, 100, {65002}, Origin::kIgp, {}, LearnedVia::kIbgp, 20, 2),
  };
  EXPECT_EQ(select_best_no_igp(routes).path_id, 2u);
}

TEST(Decision, ShorterClusterListPreferred) {
  RouteBuilder b1{kPfx};
  const Route long_cl = b1.path_id(1)
                            .as_path({65001})
                            .next_hop(1)
                            .cluster_list({100, 200})
                            .learned_from(11, LearnedVia::kIbgp)
                            .build();
  RouteBuilder b2{kPfx};
  const Route short_cl = b2.path_id(2)
                             .as_path({65002})
                             .next_hop(2)
                             .cluster_list({100})
                             .learned_from(99, LearnedVia::kIbgp)
                             .build();
  // Without the RFC 4456 refinement the lower peer id (11) would win.
  const std::vector<Route> routes{long_cl, short_cl};
  EXPECT_EQ(select_best_no_igp(routes).path_id, 2u);
  DecisionConfig cfg;
  cfg.prefer_shorter_cluster_list = false;
  EXPECT_EQ(select_best_no_igp(routes, cfg).path_id, 1u);
}

TEST(Decision, EmptyCandidatesGiveInvalidRoute) {
  EXPECT_FALSE(select_best_no_igp({}).valid());
  EXPECT_TRUE(best_as_level_routes({}).empty());
}

TEST(Decision, LocallyOriginatedFormsOwnMedGroup) {
  const std::vector<Route> routes{
      make(1, 100, {}, Origin::kIgp, 50, LearnedVia::kLocal, 0, 99),
      make(2, 100, {}, Origin::kIgp, 10, LearnedVia::kLocal, 0, 99),
  };
  // Both have empty AS path (neighbor AS 0): MED compares, lower wins.
  EXPECT_EQ(ids(best_as_level_routes(routes)), (std::vector<PathId>{2}));
}

TEST(Decision, BestAsLevelSurvivorsAreDeterministic) {
  // Property: the set of survivors never depends on input order.
  std::vector<Route> routes{
      make(1, 100, {65001}, Origin::kIgp, 10, LearnedVia::kIbgp, 11, 1),
      make(2, 100, {65002}, Origin::kIgp, 20, LearnedVia::kIbgp, 12, 2),
      make(3, 100, {65001}, Origin::kIgp, 10, LearnedVia::kIbgp, 13, 3),
      make(4, 90, {65003}, Origin::kIgp, {}, LearnedVia::kIbgp, 14, 4),
  };
  const auto forward = ids(best_as_level_routes(routes));
  std::reverse(routes.begin(), routes.end());
  EXPECT_EQ(forward, ids(best_as_level_routes(routes)));
  EXPECT_EQ(forward, (std::vector<PathId>{1, 2, 3}));
}

}  // namespace
}  // namespace abrr::bgp
