#include "bgp/prefix_index.h"

#include <gtest/gtest.h>

namespace abrr::bgp {
namespace {

TEST(PrefixIndex, AssignsDenseIdsInInsertionOrder) {
  PrefixIndex index;
  const auto a = Ipv4Prefix::parse("10.0.0.0/8");
  const auto b = Ipv4Prefix::parse("20.0.0.0/8");
  EXPECT_EQ(index.add(a), 0u);
  EXPECT_EQ(index.add(b), 1u);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.prefix_of(0), a);
  EXPECT_EQ(index.prefix_of(1), b);
}

TEST(PrefixIndex, AddIsIdempotent) {
  PrefixIndex index;
  const auto a = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(index.add(a), 0u);
  EXPECT_EQ(index.add(a), 0u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(PrefixIndex, LookupOfUnknownPrefixIsEmpty) {
  PrefixIndex index;
  index.add(Ipv4Prefix::parse("10.0.0.0/8"));
  EXPECT_FALSE(index.id_of(Ipv4Prefix::parse("10.0.0.0/16")).has_value());
  EXPECT_TRUE(index.id_of(Ipv4Prefix::parse("10.0.0.0/8")).has_value());
}

TEST(PrefixIndex, PrefixOfOutOfRangeThrows) {
  PrefixIndex index;
  EXPECT_THROW(index.prefix_of(0), std::out_of_range);
}

TEST(PrefixIndex, RoundTripsManyPrefixes) {
  PrefixIndex index;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    index.add(Ipv4Prefix{i << 12, 24});
  }
  EXPECT_EQ(index.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const auto id = index.id_of(Ipv4Prefix{i << 12, 24});
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(index.prefix_of(*id), (Ipv4Prefix{i << 12, 24}));
  }
}

}  // namespace
}  // namespace abrr::bgp
