#include "bgp/prefix_trie.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace abrr::bgp {
namespace {

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Ipv4Prefix::parse("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(*trie.find(Ipv4Prefix::parse("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find(Ipv4Prefix::parse("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.find(Ipv4Prefix::parse("10.1.0.0/24")), nullptr);
  EXPECT_TRUE(trie.erase(Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 5);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(Ipv4Prefix::parse("10.0.0.0/8")), 5);
}

TEST(PrefixTrie, LongestMatchPicksMostSpecific) {
  PrefixTrie<std::string> trie;
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), "eight");
  trie.insert(Ipv4Prefix::parse("10.1.0.0/16"), "sixteen");
  trie.insert(Ipv4Prefix::parse("10.1.2.0/24"), "twentyfour");

  const auto hit = trie.longest_match(parse_ipv4("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, "twentyfour");
  EXPECT_EQ(hit->first, Ipv4Prefix::parse("10.1.2.0/24"));

  const auto mid = trie.longest_match(parse_ipv4("10.1.9.1"));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(*mid->second, "sixteen");

  const auto top = trie.longest_match(parse_ipv4("10.200.0.1"));
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(*top->second, "eight");

  EXPECT_FALSE(trie.longest_match(parse_ipv4("11.0.0.1")).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{0, 0}, 42);
  const auto hit = trie.longest_match(parse_ipv4("203.0.113.9"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 42);
  EXPECT_EQ(hit->first.length(), 0);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{parse_ipv4("1.2.3.4"), 32}, 7);
  EXPECT_TRUE(trie.longest_match(parse_ipv4("1.2.3.4")).has_value());
  EXPECT_FALSE(trie.longest_match(parse_ipv4("1.2.3.5")).has_value());
}

TEST(PrefixTrie, OperatorBracketDefaultConstructs) {
  PrefixTrie<std::vector<int>> trie;
  trie[Ipv4Prefix::parse("10.0.0.0/8")].push_back(3);
  trie[Ipv4Prefix::parse("10.0.0.0/8")].push_back(4);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.find(Ipv4Prefix::parse("10.0.0.0/8"))->size(), 2u);
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  const std::vector<Ipv4Prefix> prefixes{
      Ipv4Prefix::parse("0.0.0.0/0"), Ipv4Prefix::parse("10.0.0.0/8"),
      Ipv4Prefix::parse("192.168.1.0/24"), Ipv4Prefix::parse("10.0.0.0/16")};
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    trie.insert(prefixes[i], static_cast<int>(i));
  }
  std::size_t count = 0;
  int sum = 0;
  trie.for_each([&](const Ipv4Prefix& p, const int& v) {
    ++count;
    sum += v;
    EXPECT_TRUE(std::find(prefixes.begin(), prefixes.end(), p) !=
                prefixes.end());
  });
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(sum, 0 + 1 + 2 + 3);
}

TEST(PrefixTrie, ClearEmptiesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.longest_match(parse_ipv4("10.0.0.1")).has_value());
}

}  // namespace
}  // namespace abrr::bgp
