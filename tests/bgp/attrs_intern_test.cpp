// AttrsInterner: canonicalization, hash stability, and the no-sharing
// guarantees that the rest of the hot path relies on.
#include "bgp/attrs_intern.h"

#include <gtest/gtest.h>

#include "bgp/attributes.h"
#include "bgp/route.h"

namespace abrr::bgp {
namespace {

PathAttrs sample_attrs() {
  PathAttrs a;
  a.origin = Origin::kIgp;
  a.next_hop = 42;
  a.local_pref = 200;
  a.med = 15;
  a.as_path = AsPath{{7018, 64512}};
  a.cluster_list = {9, 4};
  a.originator_id = 7;
  a.ext_communities = {kAbrrReflectedCommunity};
  return a;
}

TEST(AttrsContentHash, StableAndNeverZero) {
  const PathAttrs a = sample_attrs();
  const std::uint64_t h1 = attrs_content_hash(a);
  const std::uint64_t h2 = attrs_content_hash(a);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, 0u);
  EXPECT_NE(attrs_content_hash(PathAttrs{}), 0u);
}

TEST(AttrsContentHash, SensitiveToEverySemanticField) {
  const PathAttrs base = sample_attrs();
  const std::uint64_t h = attrs_content_hash(base);

  const auto differs = [&](auto mutate) {
    PathAttrs m = sample_attrs();
    mutate(m);
    return attrs_content_hash(m) != h;
  };
  EXPECT_TRUE(differs([](PathAttrs& a) { a.origin = Origin::kEgp; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.next_hop = 43; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.local_pref = 201; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.med = std::nullopt; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.med = 0; }));  // 0 != absent
  EXPECT_TRUE(differs([](PathAttrs& a) { a.as_path = AsPath{{7018}}; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.cluster_list = {4, 9}; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.originator_id = std::nullopt; }));
  EXPECT_TRUE(differs([](PathAttrs& a) { a.ext_communities.clear(); }));
}

TEST(AttrsInterner, CanonicalizesEqualBlocks) {
  const AttrsPtr a = make_attrs(sample_attrs());
  const AttrsPtr b = make_attrs(sample_attrs());
  // Equal content -> the very same canonical block.
  EXPECT_EQ(a, b);
  EXPECT_EQ(*a, *b);
  EXPECT_NE(a->content_hash, 0u);

  PathAttrs other = sample_attrs();
  other.local_pref = 300;
  const AttrsPtr c = make_attrs(std::move(other));
  EXPECT_NE(a, c);
  EXPECT_FALSE(*a == *c);
}

TEST(AttrsInterner, MutationThroughWithAttrsNeverAliases) {
  const AttrsPtr a = make_attrs(sample_attrs());
  const AttrsPtr b = with_attrs(a, [](PathAttrs& m) { m.local_pref = 999; });
  // The clone is a distinct block with a recomputed hash; the original
  // is untouched (no false sharing after mutation).
  EXPECT_NE(a, b);
  EXPECT_EQ(a->local_pref, 200u);
  EXPECT_EQ(b->local_pref, 999u);
  EXPECT_NE(a->content_hash, b->content_hash);
  EXPECT_EQ(a->content_hash, attrs_content_hash(*a));
  EXPECT_EQ(b->content_hash, attrs_content_hash(*b));

  // Mutating back to the original content re-canonicalizes to the
  // original block.
  const AttrsPtr c = with_attrs(b, [](PathAttrs& m) { m.local_pref = 200; });
  EXPECT_EQ(c, a);
}

TEST(AttrsInterner, BlocksAreStableAcrossTableGrowth) {
  // Slab storage hands out pointers that survive any amount of later
  // interning (the table may rehash; blocks never move).
  AttrsInterner& interner = AttrsInterner::global();
  PathAttrs first = sample_attrs();
  first.local_pref = 111111;
  const AttrsPtr a = make_attrs(PathAttrs{first});
  const std::uint64_t hash = a->content_hash;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    PathAttrs filler = sample_attrs();
    filler.local_pref = 200000 + i;
    make_attrs(std::move(filler));
  }
  EXPECT_GE(interner.live_blocks(), 2001u);
  EXPECT_EQ(a->content_hash, hash);
  EXPECT_EQ(make_attrs(PathAttrs{first}), a);  // still canonical
}

TEST(AttrsInterner, HitAndMissAccounting) {
  AttrsInterner& interner = AttrsInterner::global();
  PathAttrs unique = sample_attrs();
  unique.local_pref = 654321;
  interner.reset_stats();
  const AttrsPtr a = make_attrs(PathAttrs{unique});
  const AttrsPtr b = make_attrs(PathAttrs{unique});
  EXPECT_EQ(interner.misses(), 1u);
  EXPECT_EQ(interner.hits(), 1u);
  EXPECT_EQ(a, b);
}

TEST(AttrsInterner, DisabledProducesFreshBlocksWithHashes) {
  ScopedInterningDisabled guard;
  const AttrsPtr a = make_attrs(sample_attrs());
  const AttrsPtr b = make_attrs(sample_attrs());
  EXPECT_NE(a, b);    // no canonicalization
  EXPECT_EQ(*a, *b);  // ...but identical content
  // Hashes are still computed so same_announcement stays O(1).
  EXPECT_EQ(a->content_hash, b->content_hash);
  EXPECT_NE(a->content_hash, 0u);
}

TEST(SameAnnouncement, HashFastPathAgreesWithDeepCompare) {
  const Ipv4Prefix pfx = Ipv4Prefix::parse("10.0.0.0/8");
  const Route a = RouteBuilder{pfx}.path_id(1).as_path({1, 2}).build();
  const Route b = RouteBuilder{pfx}.path_id(1).as_path({1, 2}).build();
  const Route c = RouteBuilder{pfx}.path_id(1).as_path({1, 3}).build();
  EXPECT_TRUE(a.same_announcement(b));
  EXPECT_FALSE(a.same_announcement(c));

  // Same content through the non-interned path (distinct blocks, equal
  // hashes) must still compare equal.
  ScopedInterningDisabled guard;
  const Route d = RouteBuilder{pfx}.path_id(1).as_path({1, 2}).build();
  EXPECT_TRUE(a.same_announcement(d));
}

}  // namespace
}  // namespace abrr::bgp
