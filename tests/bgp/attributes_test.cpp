#include "bgp/attributes.h"

#include <gtest/gtest.h>

#include "bgp/route.h"

namespace abrr::bgp {
namespace {

TEST(AsPath, BasicAccessors) {
  const AsPath empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.length(), 0u);
  EXPECT_EQ(empty.first(), 0u);
  EXPECT_EQ(empty.origin_as(), 0u);

  const AsPath path{7018, 3356, 15169};
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.first(), 7018u);
  EXPECT_EQ(path.origin_as(), 15169u);
  EXPECT_TRUE(path.contains(3356));
  EXPECT_FALSE(path.contains(1));
  EXPECT_EQ(path.to_string(), "7018 3356 15169");
}

TEST(AsPath, PrependCreatesNewPath) {
  const AsPath path{3356};
  const AsPath longer = path.prepend(7018);
  EXPECT_EQ(longer.length(), 2u);
  EXPECT_EQ(longer.first(), 7018u);
  EXPECT_EQ(path.length(), 1u);  // original untouched
}

TEST(PathAttrs, ExtCommunityLookup) {
  PathAttrs attrs;
  EXPECT_FALSE(attrs.has_ext_community(kAbrrReflectedCommunity));
  attrs.ext_communities.push_back(kAbrrReflectedCommunity);
  EXPECT_TRUE(attrs.has_ext_community(kAbrrReflectedCommunity));
}

TEST(PathAttrs, WireSizeGrowsWithContent) {
  PathAttrs small;
  small.as_path = AsPath{1};
  PathAttrs big = small;
  big.med = 10;
  big.cluster_list = {1, 2, 3};
  big.ext_communities = {kAbrrReflectedCommunity};
  EXPECT_GT(big.wire_size(), small.wire_size());
}

TEST(PathAttrs, WithAttrsCopiesOnWrite) {
  const AttrsPtr base = make_attrs([] {
    PathAttrs a;
    a.local_pref = 100;
    return a;
  }());
  const AttrsPtr derived =
      with_attrs(base, [](PathAttrs& a) { a.local_pref = 200; });
  EXPECT_EQ(base->local_pref, 100u);
  EXPECT_EQ(derived->local_pref, 200u);
  EXPECT_NE(base, derived);
}

TEST(Route, SameAnnouncementComparesContent) {
  const auto pfx = Ipv4Prefix::parse("10.0.0.0/8");
  const Route a = RouteBuilder{pfx}.path_id(5).as_path({1}).build();
  const Route b = RouteBuilder{pfx}.path_id(5).as_path({1}).build();
  const Route c = RouteBuilder{pfx}.path_id(5).as_path({2}).build();
  const Route d = RouteBuilder{pfx}.path_id(6).as_path({1}).build();
  EXPECT_TRUE(a.same_announcement(b));  // different AttrsPtr, same content
  EXPECT_FALSE(a.same_announcement(c));
  EXPECT_FALSE(a.same_announcement(d));
}

TEST(Route, NeighborAsAndEgress) {
  const auto pfx = Ipv4Prefix::parse("10.0.0.0/8");
  const Route r =
      RouteBuilder{pfx}.as_path({7018, 1}).next_hop(42).build();
  EXPECT_EQ(r.neighbor_as(), 7018u);
  EXPECT_EQ(r.egress(), 42u);
}

TEST(Route, SetHashStableAndSensitive) {
  const auto pfx = Ipv4Prefix::parse("10.0.0.0/8");
  const Route a = RouteBuilder{pfx}.path_id(1).as_path({1}).med(5).build();
  const Route b = RouteBuilder{pfx}.path_id(2).as_path({2}).build();

  const auto h1 = route_set_hash({a, b});
  const auto h2 = route_set_hash({a, b});
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, 0u);
  EXPECT_NE(route_set_hash({a}), route_set_hash({a, b}));
  EXPECT_NE(route_set_hash({a, b}), route_set_hash({b, a}));  // order matters
  // empty set hashes to a sentinel != 0
  EXPECT_NE(route_set_hash(std::vector<Route>{}), 0u);
}

}  // namespace
}  // namespace abrr::bgp
