// Randomized-operation properties of the RIB structures: size counters
// never drift from ground truth under arbitrary announce/withdraw
// interleavings.
#include <gtest/gtest.h>

#include <map>

#include "bgp/rib.h"
#include "sim/random.h"

namespace abrr::bgp {
namespace {

class RibProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RibProperty, AdjRibInSizeNeverDrifts) {
  sim::Rng rng{GetParam()};
  AdjRibIn rib;
  // Ground truth: (prefix, peer, path) -> attrs generation.
  std::map<std::tuple<std::uint32_t, RouterId, PathId>, int> truth;

  for (int op = 0; op < 2000; ++op) {
    const auto pfx_idx = static_cast<std::uint32_t>(rng.index(8));
    const Ipv4Prefix prefix{0x0A000000 + (pfx_idx << 16), 16};
    const auto peer = static_cast<RouterId>(1 + rng.index(5));
    const auto path = static_cast<PathId>(rng.index(3));

    const int action = static_cast<int>(rng.index(4));
    if (action <= 1) {  // announce (50%)
      const auto gen = static_cast<std::uint32_t>(rng.index(4));
      rib.announce(RouteBuilder{prefix}
                       .path_id(path)
                       .as_path({65000 + gen})
                       .learned_from(peer, LearnedVia::kIbgp)
                       .build());
      truth[{pfx_idx, peer, path}] = static_cast<int>(gen);
    } else if (action == 2) {  // withdraw one path
      rib.withdraw(peer, prefix, path);
      truth.erase({pfx_idx, peer, path});
    } else {  // withdraw the peer's whole prefix
      rib.withdraw_prefix(peer, prefix);
      for (auto it = truth.begin(); it != truth.end();) {
        const auto& [p, pr, pa] = it->first;
        it = (p == pfx_idx && pr == peer) ? truth.erase(it) : std::next(it);
      }
    }
    ASSERT_EQ(rib.size(), truth.size()) << "op " << op;
  }

  // Per-peer counts agree too.
  std::map<RouterId, std::size_t> per_peer;
  for (const auto& [key, gen] : truth) ++per_peer[std::get<1>(key)];
  for (RouterId peer = 1; peer <= 5; ++peer) {
    EXPECT_EQ(rib.peer_size(peer), per_peer[peer]) << peer;
  }

  // Tearing everything down reaches exactly zero.
  for (RouterId peer = 1; peer <= 5; ++peer) rib.withdraw_peer(peer);
  EXPECT_EQ(rib.size(), 0u);
}

TEST_P(RibProperty, AdjRibOutSizeMatchesContents) {
  sim::Rng rng{GetParam()};
  AdjRibOut rib;
  std::map<std::uint32_t, std::size_t> truth;  // prefix idx -> set size

  for (int op = 0; op < 1000; ++op) {
    const auto pfx_idx = static_cast<std::uint32_t>(rng.index(6));
    const Ipv4Prefix prefix{0x0A000000 + (pfx_idx << 16), 16};
    const auto n = rng.index(4);  // 0..3 routes (0 = withdraw-all)
    std::vector<Route> routes;
    for (std::size_t i = 0; i < n; ++i) {
      routes.push_back(RouteBuilder{prefix}
                           .path_id(static_cast<PathId>(i + 1))
                           .as_path({static_cast<Asn>(
                               65000 + rng.index(3))})
                           .build());
    }
    rib.set(prefix, routes, rng.chance(0.5));
    truth[pfx_idx] = n;

    std::size_t expected = 0;
    for (const auto& [idx, size] : truth) expected += size;
    ASSERT_EQ(rib.size(), expected) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RibProperty,
                         ::testing::Values(3u, 17u, 4242u));

}  // namespace
}  // namespace abrr::bgp
