// Property tests for the decision process over randomized candidate
// sets (parameterized by seed).
#include <gtest/gtest.h>

#include <algorithm>

#include "bgp/decision.h"
#include "sim/random.h"

namespace abrr::bgp {
namespace {

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");

std::vector<Route> random_candidates(sim::Rng& rng, std::size_t n) {
  std::vector<Route> out;
  for (std::size_t i = 0; i < n; ++i) {
    RouteBuilder b{kPfx};
    b.path_id(static_cast<PathId>(i + 1))
        .local_pref(static_cast<std::uint32_t>(80 + 10 * rng.index(3)))
        .as_path({static_cast<Asn>(7000 + rng.index(5)), 64512,
                  static_cast<Asn>(30000 + rng.index(3))})
        .origin(static_cast<Origin>(rng.index(3)))
        .next_hop(static_cast<RouterId>(1 + rng.index(6)))
        .learned_from(static_cast<RouterId>(100 + i),
                      rng.chance(0.7) ? LearnedVia::kIbgp
                                      : LearnedVia::kEbgp);
    if (rng.chance(0.7)) b.med(10 * static_cast<std::uint32_t>(rng.index(4)));
    // Occasionally pad the path (longer).
    if (rng.chance(0.3)) {
      b.as_path({static_cast<Asn>(7000 + rng.index(5)), 64512, 64512,
                 static_cast<Asn>(30000 + rng.index(3))});
    }
    out.push_back(b.build());
  }
  return out;
}

bool in_set(const Route& r, const std::vector<Route>& set) {
  return std::any_of(set.begin(), set.end(), [&](const Route& s) {
    return s.path_id == r.path_id;
  });
}

class DecisionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecisionProperty, BestIsAlwaysInTheBestAsLevelSet) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 50; ++trial) {
    const auto candidates =
        random_candidates(rng, 1 + rng.index(20));
    const auto set = best_as_level_routes(candidates);
    const Route best = select_best_no_igp(candidates);
    ASSERT_TRUE(best.valid());
    EXPECT_TRUE(in_set(best, set));
  }
}

TEST_P(DecisionProperty, SetIsStableUnderRemovingLosers) {
  // Dropping any non-survivor must not change the survivor set.
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 30; ++trial) {
    const auto candidates = random_candidates(rng, 2 + rng.index(15));
    const auto set = best_as_level_routes(candidates);
    std::vector<Route> pruned;
    for (const Route& r : candidates) {
      if (in_set(r, set)) pruned.push_back(r);
    }
    const auto set2 = best_as_level_routes(pruned);
    ASSERT_EQ(set.size(), set2.size());
    for (const auto& r : set) EXPECT_TRUE(in_set(r, set2));
  }
}

TEST_P(DecisionProperty, SurvivorsShareAsLevelKeys) {
  // All survivors tie on local-pref, path length and origin.
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 30; ++trial) {
    const auto set =
        best_as_level_routes(random_candidates(rng, 1 + rng.index(20)));
    ASSERT_FALSE(set.empty());
    for (const Route& r : set) {
      EXPECT_EQ(r.attrs->local_pref, set.front().attrs->local_pref);
      EXPECT_EQ(r.attrs->as_path.length(),
                set.front().attrs->as_path.length());
      EXPECT_EQ(r.attrs->origin, set.front().attrs->origin);
    }
  }
}

TEST_P(DecisionProperty, PerGroupMedMinimality) {
  // Within each neighbor-AS group, every survivor carries the group's
  // minimum MED among the AS-level candidates.
  sim::Rng rng{GetParam()};
  DecisionConfig cfg;
  for (int trial = 0; trial < 30; ++trial) {
    const auto candidates = random_candidates(rng, 2 + rng.index(18));
    const auto pre = filter_as_level_pre_med(candidates);
    const auto set = best_as_level_routes(candidates, cfg);
    for (const Route& r : set) {
      for (const Route& other : pre) {
        if (other.neighbor_as() != r.neighbor_as()) continue;
        EXPECT_LE(cfg.med_of(r), cfg.med_of(other));
      }
    }
  }
}

TEST_P(DecisionProperty, SelectionIsOrderInvariant) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 30; ++trial) {
    auto candidates = random_candidates(rng, 2 + rng.index(15));
    const Route a = select_best_no_igp(candidates);
    rng.shuffle(std::span<Route>{candidates});
    const Route b = select_best_no_igp(candidates);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) EXPECT_EQ(a.path_id, b.path_id);
  }
}

TEST_P(DecisionProperty, SequentialFoldCanDependOnOrderOnlyViaMed) {
  // With ignore_med the vendor fold must agree with the deterministic
  // path (the partial order collapses to a total order).
  sim::Rng rng{GetParam()};
  DecisionConfig fold;
  fold.deterministic_med = false;
  fold.ignore_med = true;
  DecisionConfig det;
  det.ignore_med = true;
  for (int trial = 0; trial < 30; ++trial) {
    const auto candidates = random_candidates(rng, 1 + rng.index(15));
    const Route a = select_best(candidates, 1, nullptr, fold);
    const Route b = select_best(candidates, 1, nullptr, det);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) EXPECT_EQ(a.path_id, b.path_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654u));

}  // namespace
}  // namespace abrr::bgp
