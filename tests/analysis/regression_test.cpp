#include "analysis/regression.h"

#include <gtest/gtest.h>

#include <vector>

namespace abrr::analysis {
namespace {

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  const std::vector<double> ys{1, 3, 5, 7, 9};  // y = 2x + 1
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
  EXPECT_NEAR(fit(10), 21.0, 1e-9);
}

TEST(FitLine, NoisyDataStillClose) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i + 3 + ((i % 2 == 0) ? 0.2 : -0.2));
  }
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 3.0, 0.2);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), std::invalid_argument);
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_THROW(fit_line(xs, ys), std::invalid_argument);
  const std::vector<double> mismatched{1, 2};
  EXPECT_THROW(fit_line(mismatched, ys), std::invalid_argument);
}

TEST(BalModel, DefaultAnchorsMatchPaper) {
  const BalModel model;
  // 10.2 best AS-level routes per prefix at 25 peer ASes (§4).
  EXPECT_NEAR(model(25), 10.2, 1e-9);
  // Never below the single-path floor.
  EXPECT_DOUBLE_EQ(model(0), 1.0);
  EXPECT_DOUBLE_EQ(model(-5), 1.0);
}

TEST(BalModel, CustomFit) {
  const BalModel model{LinearFit{0.4, 2.0, 0.98}};
  EXPECT_NEAR(model(20), 10.0, 1e-9);
  EXPECT_NEAR(model.fit().r2, 0.98, 1e-9);
}

}  // namespace
}  // namespace abrr::analysis
