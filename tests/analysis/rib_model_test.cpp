// Appendix A closed forms, checked against hand-computed values at the
// paper's default parameters (2000 routers, 50 APs/clusters, 2 RRs per
// AP/cluster, 30 peer ASes, 400K prefixes).
#include "analysis/rib_model.h"

#include <gtest/gtest.h>

namespace abrr::analysis {
namespace {

ModelParams defaults(double bal = 12.0) {
  ModelParams p;
  p.prefixes = 400'000;
  p.aps = 50;
  p.rrs = 100;
  p.bal = bal;
  return p;
}

TEST(AbrrModel, ManagedIsBalTimesPrefixesPerAp) {
  const auto p = defaults();
  EXPECT_DOUBLE_EQ(AbrrModel::rib_in_managed(p), 12.0 * 400'000 / 50);
}

TEST(AbrrModel, UnmanagedIsOnePerRedundantArrPerForeignPrefix) {
  const auto p = defaults();
  // (#ARRs/#APs) x #Prefixes x (1 - 1/#APs) = 2 x 400K x 0.98
  EXPECT_DOUBLE_EQ(AbrrModel::rib_in_unmanaged(p), 2.0 * 400'000 * 0.98);
}

TEST(AbrrModel, RibOutEqualsManaged) {
  const auto p = defaults();
  EXPECT_DOUBLE_EQ(AbrrModel::rib_out(p), AbrrModel::rib_in_managed(p));
}

TEST(TbrrModel, GCapsAtPrefixesWhenBalExceedsClusters) {
  auto p = defaults(12.0);
  EXPECT_DOUBLE_EQ(TbrrModel::g(p), 12.0 / 50 * 400'000);
  p.bal = 60.0;  // >= #clusters
  EXPECT_DOUBLE_EQ(TbrrModel::g(p), 400'000);
}

TEST(TbrrModel, RibInDominatedByOtherTrrs) {
  const auto p = defaults();
  const double g = 12.0 / 50 * 400'000;  // 96K
  EXPECT_DOUBLE_EQ(TbrrModel::rib_in_managed(p), g);
  EXPECT_DOUBLE_EQ(TbrrModel::rib_in_unmanaged(p), g * 99);
  EXPECT_DOUBLE_EQ(TbrrModel::rib_in(p), g * 100);
}

TEST(TbrrModel, RibOutCountsTrrRoutesTwice) {
  const auto p = defaults();
  const double g = 96'000;
  EXPECT_DOUBLE_EQ(TbrrModel::rib_out(p), g * 2 + (400'000 - g));
}

TEST(TbrrMultiModel, NeverCapsAdvertisedRoutes) {
  const auto p = defaults();
  const double m = 96'000;
  EXPECT_DOUBLE_EQ(TbrrMultiModel::rib_in_managed(p), m);
  EXPECT_DOUBLE_EQ(TbrrMultiModel::rib_in_unmanaged(p), m * 99);
  EXPECT_DOUBLE_EQ(TbrrMultiModel::rib_out(p), m * 2 + m * 99);
}

TEST(Models, PaperHeadline_AbrrOrderOfMagnitudeSmaller) {
  // The headline of Figures 4 and 5: ABRR's RIBs are substantially
  // smaller than TBRR's at the default settings.
  const auto p = defaults();
  EXPECT_GT(TbrrModel::rib_in(p) / AbrrModel::rib_in(p), 5.0);
  EXPECT_GT(TbrrModel::rib_out(p) / AbrrModel::rib_out(p), 4.0);
  EXPECT_GT(TbrrMultiModel::rib_in(p), TbrrModel::rib_in(p) * 0.99);
}

TEST(Models, Fig4b_ApBenefitReachesDiminishingReturns) {
  // RIB-In benefit from more APs flattens: the unmanaged (DFZ) share
  // dominates (§3.2).
  auto p = defaults();
  p.aps = 10;
  p.rrs = 20;
  const double at10 = AbrrModel::rib_in(p);
  p.aps = 50;
  p.rrs = 100;
  const double at50 = AbrrModel::rib_in(p);
  p.aps = 100;
  p.rrs = 200;
  const double at100 = AbrrModel::rib_in(p);
  EXPECT_LT(at50, at10);
  // Going 50 -> 100 saves far less than 10 -> 50.
  EXPECT_LT(at50 - at100, (at10 - at50) / 2);
}

TEST(Models, Fig5b_RibOutShrinksSteadilyWithAps) {
  auto p = defaults();
  double prev = 1e18;
  for (const double aps : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    p.aps = aps;
    p.rrs = 2 * aps;
    const double out = AbrrModel::rib_out(p);
    EXPECT_LT(out, prev);
    prev = out;
  }
}

TEST(Models, Fig4a_RouterCountDoesNotChangeRrRibs) {
  // Neither model depends on the router count directly -- the paper's
  // Figure 4(a) plots flat lines for all three schemes.
  const auto p = defaults();
  const auto q = defaults();
  EXPECT_DOUBLE_EQ(AbrrModel::rib_in(p), AbrrModel::rib_in(q));
}

TEST(Models, Fig4c_RedundancyGrowsAbrrRibInOnly) {
  auto p = defaults();
  const double base = AbrrModel::rib_in(p);
  p.rrs = 200;  // 4 ARRs per AP
  EXPECT_GT(AbrrModel::rib_in(p), base);
  // TBRR RIB-Out is redundancy-independent.
  auto t1 = defaults();
  auto t2 = defaults();
  t2.rrs = 200;
  EXPECT_DOUBLE_EQ(TbrrModel::rib_out(t1), TbrrModel::rib_out(t2));
}

}  // namespace
}  // namespace abrr::analysis
