#include "analysis/session_model.h"

#include <gtest/gtest.h>

namespace abrr::analysis {
namespace {

SessionParams paper() {
  SessionParams p;
  p.routers = 2000;
  p.aps = 50;
  p.rrs_per_group = 2;
  return p;
}

TEST(SessionModel, ArrPeersWithEveryRouterPlusOtherArrs) {
  // 2000 clients + 49 other APs x 2 ARRs.
  EXPECT_DOUBLE_EQ(SessionModel::arr_sessions(paper()), 2000 + 98);
}

TEST(SessionModel, TrrPeersWithClusterAndMesh) {
  // 40 clients per cluster + 98 foreign TRRs.
  EXPECT_DOUBLE_EQ(SessionModel::trr_sessions(paper()), 40 + 98);
}

TEST(SessionModel, PaperAnchors) {
  // §3.3: in the ~1000-router, 27-cluster AS the average TRR has ~100
  // sessions while an ARR would need >1000.
  SessionParams p;
  p.routers = 1000;
  p.aps = 27;
  EXPECT_NEAR(SessionModel::trr_sessions(p), 89, 2);  // ~100 in the paper
  EXPECT_GT(SessionModel::arr_sessions(p), 1000);
}

TEST(SessionModel, ClientCounts) {
  SessionParams p = paper();
  p.aps = 15;  // the recommended 10-15 APs
  EXPECT_DOUBLE_EQ(SessionModel::abrr_client_sessions(p), 30);  // 20-30
  EXPECT_DOUBLE_EQ(SessionModel::tbrr_client_sessions(p), 2);
}

TEST(SessionModel, TotalsOrdering) {
  const auto p = paper();
  EXPECT_LT(SessionModel::tbrr_total(p), SessionModel::abrr_total(p));
  EXPECT_LT(SessionModel::abrr_total(p), SessionModel::full_mesh_total(p));
  EXPECT_DOUBLE_EQ(SessionModel::full_mesh_total(p), 2000.0 * 1999 / 2);
}

TEST(SessionModel, AbrrTotalMatchesConstruction) {
  // 100 ARRs x 2000 clients + cross-AP ARR pairs: C(100,2) minus the
  // 50 same-AP pairs.
  const auto p = paper();
  EXPECT_DOUBLE_EQ(SessionModel::abrr_total(p),
                   100.0 * 2000 + (100.0 * 98) / 2);
}

}  // namespace
}  // namespace abrr::analysis
