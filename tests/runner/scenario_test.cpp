// ScenarioSpec validation + sweep expansion.
#include "runner/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace abrr::runner {
namespace {

bool has_error(const std::vector<ValidationError>& errors,
               const std::string& field) {
  return std::any_of(errors.begin(), errors.end(),
                     [&](const ValidationError& e) {
                       return e.field == field;
                     });
}

TEST(ScenarioSpec, DefaultsAreValid) {
  EXPECT_TRUE(ScenarioSpec{}.validate().empty());
  EXPECT_TRUE(ScenarioSpec::paper(ibgp::IbgpMode::kAbrr, 8, 42)
                  .validate()
                  .empty());
}

TEST(ScenarioSpec, RejectsZeroArrsPerAp) {
  ScenarioSpec spec;
  spec.mode = ibgp::IbgpMode::kAbrr;
  spec.abrr.arrs_per_ap = 0;
  EXPECT_TRUE(has_error(spec.validate(), "abrr.arrs_per_ap"));
}

TEST(ScenarioSpec, RejectsMultipathOutsideTbrr) {
  ScenarioSpec spec;
  spec.mode = ibgp::IbgpMode::kFullMesh;
  spec.multipath = true;
  EXPECT_TRUE(has_error(spec.validate(), "multipath"));

  spec.mode = ibgp::IbgpMode::kAbrr;
  EXPECT_TRUE(has_error(spec.validate(), "multipath"));

  spec.mode = ibgp::IbgpMode::kTbrr;
  EXPECT_TRUE(spec.validate().empty());
  spec.mode = ibgp::IbgpMode::kDual;
  EXPECT_TRUE(spec.validate().empty());
}

TEST(ScenarioSpec, RejectsBalancedApsWithoutPrefixes) {
  ScenarioSpec spec;
  spec.mode = ibgp::IbgpMode::kAbrr;
  spec.abrr.balanced_aps = true;
  spec.workload.prefixes = 0;
  const auto errors = spec.validate();
  EXPECT_TRUE(has_error(errors, "abrr.balanced_aps"));
  EXPECT_TRUE(has_error(errors, "workload.prefixes"));
}

TEST(ScenarioSpec, RejectsAbrrKnobsOnNonAbrrModes) {
  ScenarioSpec spec;
  spec.mode = ibgp::IbgpMode::kTbrr;
  spec.abrr.balanced_aps = true;
  spec.abrr.force_client_reduction = true;
  const auto errors = spec.validate();
  EXPECT_TRUE(has_error(errors, "abrr.balanced_aps"));
  EXPECT_TRUE(has_error(errors, "abrr.force_client_reduction"));
}

TEST(ScenarioSpec, RejectsEmptySeedsAndName) {
  ScenarioSpec spec;
  spec.name.clear();
  spec.seeds.clear();
  const auto errors = spec.validate();
  EXPECT_TRUE(has_error(errors, "name"));
  EXPECT_TRUE(has_error(errors, "seeds"));
}

TEST(ScenarioSpec, RejectsFaultNonsense) {
  ScenarioSpec spec;
  spec.mode = ibgp::IbgpMode::kFullMesh;
  spec.fault.enabled = true;
  spec.fault.hold_time = 0;
  spec.fault.scenario = harness::FaultOptions::Scenario::kRrCrash;
  const auto errors = spec.validate();
  EXPECT_TRUE(has_error(errors, "fault.hold_time"));
  EXPECT_TRUE(has_error(errors, "fault.scenario"));  // no RR to crash
}

TEST(ScenarioSpec, RendersStructuredErrors) {
  ScenarioSpec spec;
  spec.mode = ibgp::IbgpMode::kAbrr;
  spec.abrr.arrs_per_ap = 0;
  const std::string rendered = render_errors(spec.validate());
  EXPECT_NE(rendered.find("abrr.arrs_per_ap"), std::string::npos);
}

TEST(ScenarioSpec, ModeNamesRoundTrip) {
  for (const auto mode :
       {ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr,
        ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kDual}) {
    const auto parsed = parse_mode(mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_mode("rrabr").has_value());
}

TEST(ScenarioSweep, CrossProductInDeclaredOrder) {
  ScenarioSpec base;
  base.name = "base";
  SweepAxes axes;
  axes.modes = {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr};
  axes.num_aps = {4, 8};
  axes.seeds = {1, 2};
  const auto specs = base.sweep(axes);
  ASSERT_EQ(specs.size(), 8u);
  // modes outermost, seeds innermost
  EXPECT_EQ(specs[0].name, "base/abrr/ap4/seed1");
  EXPECT_EQ(specs[1].name, "base/abrr/ap4/seed2");
  EXPECT_EQ(specs[2].name, "base/abrr/ap8/seed1");
  EXPECT_EQ(specs[7].name, "base/tbrr/ap8/seed2");
  for (const auto& s : specs) {
    ASSERT_EQ(s.seeds.size(), 1u);
    EXPECT_TRUE(s.validate().empty());
  }
}

TEST(ScenarioSweep, EmptyAxesKeepBaseValues) {
  ScenarioSpec base;
  base.seeds = {7, 9};
  base.abrr.num_aps = 5;
  const auto specs = base.sweep({});
  ASSERT_EQ(specs.size(), 2u);  // only the base seed list expands
  EXPECT_EQ(specs[0].abrr.num_aps, 5u);
  EXPECT_EQ(specs[0].seeds.front(), 7u);
  EXPECT_EQ(specs[1].seeds.front(), 9u);
}

TEST(ScenarioSpec, FaultHoldTimeReachesTestbedConfig) {
  ScenarioSpec spec;
  spec.fault.enabled = true;
  spec.fault.hold_time = sim::sec(3);
  EXPECT_EQ(spec.testbed_config(1).timing.hold_time, sim::sec(3));
  spec.fault.enabled = false;
  EXPECT_EQ(spec.testbed_config(1).timing.hold_time, 0);
}

}  // namespace
}  // namespace abrr::runner
