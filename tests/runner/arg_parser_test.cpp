// runner::ArgParser: strict shared flag parsing for the benches.
#include "runner/arg_parser.h"

#include <gtest/gtest.h>

#include <vector>

namespace abrr::runner {
namespace {

/// argv builder (argv[0] is the program name, as in main()).
std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(ArgParser, ParsesEveryDestinationType) {
  std::string text;
  double f = 0;
  std::size_t n = 0;
  std::uint32_t u32 = 0;
  std::vector<std::uint64_t> seeds;
  bool flag = false;

  ArgParser p{"prog"};
  p.add("text", "", &text);
  p.add("f", "", &f);
  p.add("n", "", &n);
  p.add("u32", "", &u32);
  p.add("seeds", "", &seeds);
  p.add("flag", "", &flag);

  const auto argv = argv_of({"--text=hi", "--f=2.5", "--n=123",
                             "--u32=7", "--seeds=1,2,3", "--flag"});
  std::string error;
  ASSERT_TRUE(p.try_parse(static_cast<int>(argv.size()),
                          const_cast<char* const*>(argv.data()), &error))
      << error;
  EXPECT_EQ(text, "hi");
  EXPECT_DOUBLE_EQ(f, 2.5);
  EXPECT_EQ(n, 123u);
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(flag);
}

TEST(ArgParser, UnknownFlagFails) {
  ArgParser p{"prog"};
  std::size_t n = 0;
  p.add("n", "", &n);
  const auto argv = argv_of({"--bogus=1"});
  std::string error;
  EXPECT_FALSE(p.try_parse(static_cast<int>(argv.size()),
                           const_cast<char* const*>(argv.data()), &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos);
}

TEST(ArgParser, MalformedValueFails) {
  ArgParser p{"prog"};
  std::size_t n = 0;
  p.add("n", "", &n);
  for (const char* bad : {"--n=abc", "--n=", "--n=12x", "--n"}) {
    const auto argv = argv_of({bad});
    std::string error;
    EXPECT_FALSE(p.try_parse(static_cast<int>(argv.size()),
                             const_cast<char* const*>(argv.data()), &error))
        << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ArgParser, PositionalArgumentFails) {
  ArgParser p{"prog"};
  const auto argv = argv_of({"stray"});
  std::string error;
  EXPECT_FALSE(p.try_parse(static_cast<int>(argv.size()),
                           const_cast<char* const*>(argv.data()), &error));
  EXPECT_NE(error.find("stray"), std::string::npos);
}

TEST(ArgParser, PassthroughPrefixIsIgnored) {
  ArgParser p{"prog"};
  p.allow_prefix("--benchmark_");
  const auto argv = argv_of({"--benchmark_filter=Decision"});
  std::string error;
  EXPECT_TRUE(p.try_parse(static_cast<int>(argv.size()),
                          const_cast<char* const*>(argv.data()), &error))
      << error;
}

TEST(ArgParser, HelpIsReported) {
  ArgParser p{"prog"};
  std::size_t n = 0;
  p.add("n", "the n flag", &n);
  const auto argv = argv_of({"--help"});
  std::string error;
  EXPECT_FALSE(p.try_parse(static_cast<int>(argv.size()),
                           const_cast<char* const*>(argv.data()), &error));
  EXPECT_TRUE(p.help_requested());
  EXPECT_TRUE(error.empty());
  EXPECT_NE(p.usage().find("--n=VALUE"), std::string::npos);
  EXPECT_NE(p.usage().find("the n flag"), std::string::npos);
}

TEST(ArgParser, AbsentFlagKeepsDefault) {
  ArgParser p{"prog"};
  std::size_t n = 42;
  bool b = false;
  p.add("n", "", &n);
  p.add("b", "", &b);
  const auto argv = argv_of({});
  std::string error;
  ASSERT_TRUE(p.try_parse(static_cast<int>(argv.size()),
                          const_cast<char* const*>(argv.data()), &error));
  EXPECT_EQ(n, 42u);
  EXPECT_FALSE(b);
}

TEST(ArgParser, ExplicitBoolValues) {
  ArgParser p{"prog"};
  bool b = true;
  p.add("b", "", &b);
  const auto argv = argv_of({"--b=false"});
  std::string error;
  ASSERT_TRUE(p.try_parse(static_cast<int>(argv.size()),
                          const_cast<char* const*>(argv.data()), &error));
  EXPECT_FALSE(b);
}

}  // namespace
}  // namespace abrr::runner
