// The runner's central guarantee: the serialized TrialResults are
// byte-identical no matter how many workers execute the batch or in
// which order specs are submitted. Exercises all four iBGP modes, with
// and without fault episodes and observability.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "runner/runner.h"

namespace abrr::runner {
namespace {

/// A deliberately tiny bed so the matrix stays fast: 3 PoPs, 2 clients
/// each, 48 prefixes, short snapshot.
ScenarioSpec tiny(ibgp::IbgpMode mode) {
  ScenarioSpec spec;
  spec.name = mode_name(mode);
  spec.mode = mode;
  spec.topology.pops = 3;
  spec.topology.clients_per_pop = 2;
  spec.topology.peer_ases = 4;
  spec.topology.points_per_as = 2;
  spec.workload.prefixes = 48;
  spec.workload.snapshot_seconds = 5.0;
  spec.abrr.num_aps = 2;
  spec.seeds = {11, 12};
  return spec;
}

std::vector<ScenarioSpec> all_modes() {
  std::vector<ScenarioSpec> specs;
  for (const auto mode :
       {ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr,
        ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kDual}) {
    specs.push_back(tiny(mode));
  }
  return specs;
}

std::vector<std::string> serialized(const std::vector<TrialResult>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const TrialResult& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.scenario << ": " << r.error;
    out.push_back(r.serialize());
  }
  return out;
}

/// Key -> canonical bytes, for order-independent comparison.
std::map<std::string, std::string> keyed(
    const std::vector<TrialResult>& results) {
  std::map<std::string, std::string> out;
  for (const TrialResult& r : results) {
    out[r.scenario + "#" + std::to_string(r.seed)] = r.serialize();
  }
  return out;
}

TEST(RunnerDeterminism, JobsOneEqualsJobsFourAllModes) {
  const auto specs = all_modes();
  const auto r1 = ExperimentRunner{{.jobs = 1}}.run(specs);
  const auto r4 = ExperimentRunner{{.jobs = 4}}.run(specs);
  ASSERT_EQ(r1.size(), 8u);  // 4 modes x 2 seeds
  EXPECT_EQ(serialized(r1), serialized(r4));
}

TEST(RunnerDeterminism, ShuffledSubmissionSameResults) {
  auto specs = all_modes();
  const auto baseline = keyed(ExperimentRunner{{.jobs = 1}}.run(specs));
  std::reverse(specs.begin(), specs.end());
  std::swap(specs[0], specs[2]);
  const auto shuffled = keyed(ExperimentRunner{{.jobs = 4}}.run(specs));
  EXPECT_EQ(baseline, shuffled);
}

TEST(RunnerDeterminism, WithObservability) {
  std::vector<ScenarioSpec> specs;
  for (const auto mode : {ibgp::IbgpMode::kTbrr, ibgp::IbgpMode::kAbrr}) {
    auto spec = tiny(mode);
    spec.obs.enabled = true;
    spec.obs.sample_period = sim::msec(500);
    specs.push_back(std::move(spec));
  }
  const auto r1 = ExperimentRunner{{.jobs = 1}}.run(specs);
  const auto r4 = ExperimentRunner{{.jobs = 4}}.run(specs);
  EXPECT_EQ(serialized(r1), serialized(r4));
}

TEST(RunnerDeterminism, WithFaultEpisodes) {
  std::vector<ScenarioSpec> specs;
  for (const auto mode :
       {ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr,
        ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kDual}) {
    auto spec = tiny(mode);
    spec.seeds = {11};
    spec.fault.enabled = true;
    spec.fault.hold_time = sim::sec(1);
    spec.fault.outage = sim::sec(3);
    spec.fault.verify_fullmesh = false;
    // full-mesh has no reflector to crash; take a border router there
    spec.fault.scenario = mode == ibgp::IbgpMode::kFullMesh
                              ? harness::FaultOptions::Scenario::kBorderCrash
                              : harness::FaultOptions::Scenario::kRrCrash;
    specs.push_back(std::move(spec));
  }
  const auto r1 = ExperimentRunner{{.jobs = 1}}.run(specs);
  const auto r4 = ExperimentRunner{{.jobs = 4}}.run(specs);
  for (const auto& r : r1) {
    EXPECT_TRUE(r.fault_ran) << r.scenario;
  }
  EXPECT_EQ(serialized(r1), serialized(r4));
}

TEST(RunnerDeterminism, WallClockIsExcludedFromSerialization) {
  auto spec = tiny(ibgp::IbgpMode::kAbrr);
  spec.seeds = {11};
  const std::vector<ScenarioSpec> specs{spec};
  auto results = ExperimentRunner{{.jobs = 1}}.run(specs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].wall_ms, 0.0);
  const std::string a = results[0].serialize();
  results[0].wall_ms = 12345.0;
  EXPECT_EQ(a, results[0].serialize());
}

TEST(Runner, InvalidSpecRefusedUpFront) {
  auto bad = tiny(ibgp::IbgpMode::kAbrr);
  bad.abrr.arrs_per_ap = 0;
  const std::vector<ScenarioSpec> specs{bad};
  try {
    ExperimentRunner{{.jobs = 1}}.run(specs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("abrr.arrs_per_ap"),
              std::string::npos);
  }
}

TEST(Runner, SweepRunsCrossProduct) {
  auto base = tiny(ibgp::IbgpMode::kAbrr);
  base.name = "mini";
  SweepAxes axes;
  axes.modes = {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr};
  axes.seeds = {11, 12};
  const auto results = ExperimentRunner{{.jobs = 2}}.run_sweep(base, axes);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].scenario, "mini/abrr/ap2/seed11");
  EXPECT_EQ(results[3].scenario, "mini/tbrr/ap2/seed12");
  for (const auto& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.converged) << r.scenario;
  }
}

}  // namespace
}  // namespace abrr::runner
