#include "igp/spf.h"

#include <gtest/gtest.h>

namespace abrr::igp {
namespace {

Graph diamond() {
  //    1
  //   / \      1-2: 1, 1-3: 4
  //  2   3     2-4: 2, 3-4: 1
  //   \ /
  //    4
  Graph g;
  g.add_link(1, 2, 1);
  g.add_link(1, 3, 4);
  g.add_link(2, 4, 2);
  g.add_link(3, 4, 1);
  return g;
}

TEST(Graph, NodeAndLinkBookkeeping) {
  Graph g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.link_count(), 4u);
  EXPECT_TRUE(g.has_node(1));
  EXPECT_FALSE(g.has_node(9));
  g.add_node(1);  // idempotent
  EXPECT_EQ(g.node_count(), 4u);
}

TEST(Graph, ParallelLinksKeepSmallerMetric) {
  Graph g;
  g.add_link(1, 2, 10);
  g.add_link(1, 2, 3);
  EXPECT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.neighbors(1).front().metric, 3);
}

TEST(Graph, RejectsBadLinks) {
  Graph g;
  EXPECT_THROW(g.add_link(1, 1, 5), std::invalid_argument);
  EXPECT_THROW(g.add_link(1, 2, 0), std::invalid_argument);
}

TEST(Spf, ComputesShortestDistances) {
  const Graph g = diamond();
  const SpfTree tree = compute_spf(g, 1);
  EXPECT_EQ(tree.distance_to(1), 0);
  EXPECT_EQ(tree.distance_to(2), 1);
  EXPECT_EQ(tree.distance_to(4), 3);   // 1-2-4
  EXPECT_EQ(tree.distance_to(3), 4);   // 1-3 direct == 1-2-4-3 tie
}

TEST(Spf, FirstHopFollowsShortestPath) {
  const Graph g = diamond();
  const SpfTree tree = compute_spf(g, 1);
  EXPECT_EQ(tree.next_hop_to(1), 1u);
  EXPECT_EQ(tree.next_hop_to(2), 2u);
  EXPECT_EQ(tree.next_hop_to(4), 2u);  // via 2
}

TEST(Spf, UnreachableNodesReportInfinity) {
  Graph g = diamond();
  g.add_node(99);
  const SpfTree tree = compute_spf(g, 1);
  EXPECT_EQ(tree.distance_to(99), bgp::kIgpInfinity);
  EXPECT_EQ(tree.next_hop_to(99), bgp::kNoRouter);
}

TEST(Spf, UnknownSourceYieldsEmptyTree) {
  const Graph g = diamond();
  const SpfTree tree = compute_spf(g, 77);
  EXPECT_EQ(tree.distance_to(1), bgp::kIgpInfinity);
}

TEST(Spf, SymmetricDistances) {
  const Graph g = diamond();
  SpfCache cache{g};
  for (RouterId a : {1u, 2u, 3u, 4u}) {
    for (RouterId b : {1u, 2u, 3u, 4u}) {
      EXPECT_EQ(cache.distance(a, b), cache.distance(b, a))
          << a << " <-> " << b;
    }
  }
}

TEST(SpfCache, DistanceFnMatchesTree) {
  const Graph g = diamond();
  SpfCache cache{g};
  const auto fn = cache.distance_fn(1);
  EXPECT_EQ(fn(4), 3);
  EXPECT_EQ(fn(1), 0);
}

TEST(SpfCache, InvalidateRecomputes) {
  Graph g;
  g.add_link(1, 2, 10);
  SpfCache cache{g};
  EXPECT_EQ(cache.distance(1, 2), 10);
  g.add_link(1, 2, 4);  // tighten
  cache.invalidate();
  EXPECT_EQ(cache.distance(1, 2), 4);
}

TEST(Spf, WalkingFirstHopsReachesTarget) {
  // Property: repeatedly following next_hop from any node reaches the
  // target within node_count() steps (no micro-loops in SPF).
  Graph g;
  // A ring with a chord.
  for (RouterId i = 1; i <= 6; ++i) g.add_link(i, i % 6 + 1, 1 + (i % 3));
  g.add_link(1, 4, 2);
  SpfCache cache{g};
  for (RouterId src = 1; src <= 6; ++src) {
    for (RouterId dst = 1; dst <= 6; ++dst) {
      RouterId at = src;
      std::size_t steps = 0;
      while (at != dst) {
        at = cache.next_hop(at, dst);
        ASSERT_NE(at, bgp::kNoRouter);
        ASSERT_LE(++steps, g.node_count());
      }
    }
  }
}

}  // namespace
}  // namespace abrr::igp
