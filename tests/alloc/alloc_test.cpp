// Allocation-path suite (CTest label "alloc"): the trial-owned Arena,
// the scheduler's pooled event slabs, the interner's TrialScope slab
// reuse, and a determinism re-check proving the arena/pool machinery
// keeps --jobs=N output byte-identical. bench/run_bench.sh runs this
// suite as a preflight before publishing benchmark numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/attrs_intern.h"
#include "runner/runner.h"
#include "sim/arena.h"
#include "sim/scheduler.h"

namespace abrr {
namespace {

// ---------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------

struct DtorCounter {
  std::vector<int>* order;
  int id;
  ~DtorCounter() { order->push_back(id); }
};

TEST(Arena, CreateRunsFinalizersInReverseOrderOnReset) {
  sim::Arena arena;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) arena.create<DtorCounter>(&order, i);
  EXPECT_TRUE(order.empty());
  arena.reset();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(Arena, TriviallyDestructibleTypesSkipFinalizers) {
  sim::Arena arena;
  std::uint64_t* p = arena.create<std::uint64_t>(42u);
  EXPECT_EQ(*p, 42u);
  arena.reset();  // must not touch *p via any finalizer — nothing to run
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, ResetReusesChunksAndAddresses) {
  sim::Arena arena{1024};
  // Force growth past the first chunk.
  std::vector<void*> first_round;
  for (int i = 0; i < 64; ++i) {
    first_round.push_back(arena.allocate(64, 8));
  }
  const std::size_t chunks = arena.chunk_count();
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(chunks, 1u);

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks) << "reset must retain chunks";
  EXPECT_EQ(arena.bytes_reserved(), reserved);

  // The second trial refills the exact pages the first one warmed.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(arena.allocate(64, 8), first_round[i]) << "allocation " << i;
  }
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  sim::Arena arena{1024};
  void* big = arena.allocate(16 * 1024, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  EXPECT_GE(arena.bytes_reserved(), 16u * 1024);
  // Small allocations keep working after the oversized one.
  void* small = arena.allocate(16, 8);
  ASSERT_NE(small, nullptr);
}

TEST(Arena, ReserveIsIdempotentAndPreventsMidTrialGrowth) {
  sim::Arena arena;
  arena.reserve(200 * 1024);
  const std::size_t chunks = arena.chunk_count();
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 200u * 1024);
  arena.reserve(200 * 1024);  // already satisfied: no new chunks
  EXPECT_EQ(arena.chunk_count(), chunks);

  // Fill within the reserved budget; the chunk set must not grow.
  std::size_t used = 0;
  while (used + 128 <= 200 * 1024) {
    arena.allocate(128, 8);
    used += 128;
  }
  EXPECT_EQ(arena.chunk_count(), chunks);
}

// ---------------------------------------------------------------------
// Scheduler event pool
// ---------------------------------------------------------------------

TEST(SchedulerPool, GrowsInSlabsAndRecyclesAfterQuiescence) {
  sim::Scheduler sched;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(i, [&fired] { ++fired; });
  }
  EXPECT_EQ(sched.pool_in_use(), 1000u);
  const std::size_t capacity = sched.pool_capacity();
  EXPECT_GE(capacity, 1000u);
  EXPECT_EQ(capacity % 256, 0u) << "pool grows in whole slabs";

  ASSERT_TRUE(sched.run_to_quiescence());
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(sched.pool_in_use(), 0u);
  EXPECT_EQ(sched.pool_capacity(), capacity) << "slabs are retained";

  // A second wave of the same size reuses the freed slots: no growth.
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_after(1, [&fired] { ++fired; });
  }
  EXPECT_EQ(sched.pool_capacity(), capacity);
  ASSERT_TRUE(sched.run_to_quiescence());
  EXPECT_EQ(fired, 2000);
}

TEST(SchedulerPool, CancelReleasesSlotImmediately) {
  sim::Scheduler sched;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sched.schedule_at(100 + i, [] {}));
  }
  EXPECT_EQ(sched.pool_in_use(), 10u);
  for (const sim::EventId id : ids) sched.cancel(id);
  EXPECT_EQ(sched.pool_in_use(), 0u);
  EXPECT_FALSE(sched.has_pending());

  // The freed slots satisfy new scheduling without growing the pool.
  const std::size_t capacity = sched.pool_capacity();
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    sched.schedule_at(200 + i, [&fired] { ++fired; });
  }
  EXPECT_EQ(sched.pool_capacity(), capacity);
  ASSERT_TRUE(sched.run_to_quiescence());
  EXPECT_EQ(fired, 200);
}

TEST(SchedulerPool, StaleIdsNeverAliasRecycledSlots) {
  sim::Scheduler sched;
  int first = 0;
  const sim::EventId stale = sched.schedule_at(1, [&first] { ++first; });
  ASSERT_TRUE(sched.run_to_quiescence());
  EXPECT_EQ(first, 1);

  // The fired event's slot is recycled for the next scheduling; the old
  // id's generation no longer matches, so cancelling it is a no-op.
  int second = 0;
  sched.schedule_at(2, [&second] { ++second; });
  EXPECT_EQ(sched.pool_in_use(), 1u);
  sched.cancel(stale);
  EXPECT_EQ(sched.pool_in_use(), 1u) << "stale cancel must not hit new event";
  ASSERT_TRUE(sched.run_to_quiescence());
  EXPECT_EQ(second, 1);
}

TEST(SchedulerPool, DoubleCancelIsHarmless) {
  sim::Scheduler sched;
  const sim::EventId id = sched.schedule_at(5, [] {});
  sched.cancel(id);
  sched.cancel(id);  // generation already bumped: no-op
  sched.cancel(0);   // 0 is never valid
  EXPECT_EQ(sched.pool_in_use(), 0u);
  EXPECT_TRUE(sched.run_to_quiescence());
}

TEST(SchedulerPool, EmptyCallbackIsRejected) {
  sim::Scheduler sched;
  EXPECT_THROW(sched.schedule_at(1, {}), std::invalid_argument);
  EXPECT_EQ(sched.pool_in_use(), 0u);
}

// ---------------------------------------------------------------------
// Interner trial scope
// ---------------------------------------------------------------------

bgp::PathAttrs sample_attrs(std::uint32_t pref) {
  bgp::PathAttrs attrs;
  attrs.as_path = bgp::AsPath{{64512, 7018}};
  attrs.local_pref = pref;
  attrs.next_hop = 0x0A000001;
  return attrs;
}

TEST(InternerTrialScope, RedirectsGlobalAndResetsOnEntry) {
  bgp::AttrsInterner& outer = bgp::AttrsInterner::global();
  {
    bgp::AttrsInterner::TrialScope scope{256};
    EXPECT_EQ(&bgp::AttrsInterner::global(), &scope.interner());
    EXPECT_NE(&scope.interner(), &outer);
    EXPECT_EQ(scope.interner().live_blocks(), 0u) << "entry resets the pool";
  }
  EXPECT_EQ(&bgp::AttrsInterner::global(), &outer);
}

TEST(InternerTrialScope, SlabsAreReusedAcrossTrials) {
  const bgp::PathAttrs* first_block = nullptr;
  std::uint64_t resets_before = 0;
  {
    bgp::AttrsInterner::TrialScope scope{256};
    first_block = scope.interner().intern(sample_attrs(100));
    for (std::uint32_t i = 0; i < 64; ++i) {
      scope.interner().intern(sample_attrs(200 + i));
    }
    EXPECT_EQ(scope.interner().live_blocks(), 65u);
    resets_before = scope.interner().slab_resets();
  }
  {
    // Same thread -> same trial pool. Entry resets it, and the first
    // block of the new trial lands on the exact slab address the
    // previous trial's first block occupied.
    bgp::AttrsInterner::TrialScope scope{256};
    EXPECT_EQ(scope.interner().slab_resets(), resets_before + 1);
    EXPECT_EQ(scope.interner().live_blocks(), 0u);
    const bgp::PathAttrs* reused = scope.interner().intern(sample_attrs(100));
    EXPECT_EQ(reused, first_block) << "slab storage must be recycled";
  }
}

TEST(InternerTrialScope, ExitLeavesBlocksAliveUntilNextEntry) {
  const bgp::PathAttrs* block = nullptr;
  {
    bgp::AttrsInterner::TrialScope scope{64};
    block = scope.interner().intern(sample_attrs(77));
  }
  // Exit restores the previous interner but does NOT reset: the inline
  // (jobs<=1) runner path may still be reading the trial's last routes.
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->local_pref, 77u);
  EXPECT_NE(block->content_hash, 0u);
}

TEST(InternerTrialScope, CanonicalizesWithinOneTrial) {
  bgp::AttrsInterner::TrialScope scope{64};
  const bgp::PathAttrs* a = scope.interner().intern(sample_attrs(5));
  const bgp::PathAttrs* b = scope.interner().intern(sample_attrs(5));
  const bgp::PathAttrs* c = scope.interner().intern(sample_attrs(6));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(scope.interner().hits(), 1u);
  EXPECT_EQ(scope.interner().misses(), 2u);
}

// ---------------------------------------------------------------------
// Determinism with arenas: the allocation machinery must not leak any
// execution-order dependence into results. Alloc telemetry (attr_blocks,
// sched_events, ...) is PART of serialize(), so this also proves the
// pools behave identically at every --jobs level.
// ---------------------------------------------------------------------

runner::ScenarioSpec tiny(ibgp::IbgpMode mode) {
  runner::ScenarioSpec spec;
  spec.name = runner::mode_name(mode);
  spec.mode = mode;
  spec.topology.pops = 3;
  spec.topology.clients_per_pop = 2;
  spec.topology.peer_ases = 4;
  spec.topology.points_per_as = 2;
  spec.workload.prefixes = 48;
  spec.workload.snapshot_seconds = 5.0;
  spec.abrr.num_aps = 2;
  spec.seeds = {21, 22};
  return spec;
}

TEST(AllocDeterminism, JobsOneVsFourVsShuffled) {
  std::vector<runner::ScenarioSpec> specs{tiny(ibgp::IbgpMode::kAbrr),
                                          tiny(ibgp::IbgpMode::kTbrr)};
  const auto r1 = runner::ExperimentRunner{{.jobs = 1}}.run(specs);
  const auto r4 = runner::ExperimentRunner{{.jobs = 4}}.run(specs);
  ASSERT_EQ(r1.size(), 4u);
  ASSERT_EQ(r4.size(), 4u);
  std::map<std::string, std::string> baseline;
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(r1[i].error.empty()) << r1[i].error;
    EXPECT_GT(r1[i].attr_blocks, 0u);
    EXPECT_GT(r1[i].sched_events, 0u);
    EXPECT_GT(r1[i].sched_pool_capacity, 0u);
    EXPECT_EQ(r1[i].serialize(), r4[i].serialize());
    baseline[r1[i].scenario + "#" + std::to_string(r1[i].seed)] =
        r1[i].serialize();
  }

  std::reverse(specs.begin(), specs.end());
  const auto shuffled = runner::ExperimentRunner{{.jobs = 4}}.run(specs);
  for (const auto& r : shuffled) {
    const auto it = baseline.find(r.scenario + "#" + std::to_string(r.seed));
    ASSERT_NE(it, baseline.end());
    EXPECT_EQ(it->second, r.serialize()) << r.scenario;
  }
}

}  // namespace
}  // namespace abrr
