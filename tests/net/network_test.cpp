#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "bgp/route.h"

namespace abrr::net {
namespace {

using bgp::Ipv4Prefix;
using bgp::RouteBuilder;
using bgp::UpdateMessage;

UpdateMessage msg(int tag) {
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.announce.push_back(RouteBuilder{m.prefix}
                           .path_id(static_cast<bgp::PathId>(tag))
                           .as_path({65001})
                           .build());
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  sim::Rng rng{1};
  Network net{sched, rng};
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  std::vector<sim::Time> arrivals;
  net.register_endpoint(2, [&](RouterId, const UpdateMessage&) {
    arrivals.push_back(sched.now());
  });
  net.register_endpoint(1, [](RouterId, const UpdateMessage&) {});
  net.connect(1, 2, sim::msec(5));
  net.send(1, 2, msg(1));
  sched.run_to_quiescence();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals.front(), sim::msec(5));
}

TEST_F(NetworkTest, FifoOrderSurvivesJitter) {
  std::vector<int> order;
  net.register_endpoint(2, [&](RouterId, const UpdateMessage& m) {
    order.push_back(static_cast<int>(m.announce.front().path_id));
  });
  net.register_endpoint(1, [](RouterId, const UpdateMessage&) {});
  net.connect(1, 2, sim::msec(5), /*jitter=*/sim::msec(50));
  for (int i = 0; i < 20; ++i) net.send(1, 2, msg(i));
  sched.run_to_quiescence();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(NetworkTest, DirectionsAreIndependentChannels) {
  int at1 = 0, at2 = 0;
  net.register_endpoint(1, [&](RouterId, const UpdateMessage&) { ++at1; });
  net.register_endpoint(2, [&](RouterId, const UpdateMessage&) { ++at2; });
  net.connect(1, 2, sim::msec(1));
  net.send(1, 2, msg(0));
  net.send(2, 1, msg(1));
  sched.run_to_quiescence();
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(at2, 1);
  EXPECT_EQ(net.session_count(), 1u);
}

TEST_F(NetworkTest, CountsMessagesAndBytes) {
  net.register_endpoint(2, [](RouterId, const UpdateMessage&) {});
  net.register_endpoint(1, [](RouterId, const UpdateMessage&) {});
  net.connect(1, 2, sim::msec(1));
  const auto m = msg(0);
  net.send(1, 2, m);
  net.send(1, 2, m);
  sched.run_to_quiescence();
  EXPECT_EQ(net.total_messages(), 2u);
  // total_bytes() is measured (exact RFC 4271 encoding); the legacy
  // closed-form estimate moves to total_modeled_bytes().
  EXPECT_EQ(net.total_modeled_bytes(), 2 * m.wire_size());
  EXPECT_EQ(net.total_bytes(), 2 * net.wire_size(m));
  EXPECT_GT(net.total_bytes(), 0u);
  const ChannelState* ch = net.channel(1, 2);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->messages, 2u);
  EXPECT_EQ(ch->bytes, 2 * m.wire_size());
  EXPECT_EQ(ch->wire_bytes, net.total_bytes());
  EXPECT_EQ(net.channel(2, 1)->messages, 0u);
  // One interned attribute block -> one cached size.
  EXPECT_EQ(net.sizer_cached_blocks(), 1u);
}

TEST_F(NetworkTest, SenderIdentityIsDelivered) {
  RouterId from = 0;
  net.register_endpoint(2,
                        [&](RouterId f, const UpdateMessage&) { from = f; });
  net.register_endpoint(7, [](RouterId, const UpdateMessage&) {});
  net.connect(7, 2, sim::msec(1));
  net.send(7, 2, msg(0));
  sched.run_to_quiescence();
  EXPECT_EQ(from, 7u);
}

TEST_F(NetworkTest, RejectsUnconnectedAndUnregistered) {
  net.register_endpoint(1, [](RouterId, const UpdateMessage&) {});
  EXPECT_THROW(net.send(1, 2, msg(0)), std::logic_error);  // no channel
  net.connect(1, 3, sim::msec(1));
  EXPECT_THROW(net.send(1, 3, msg(0)), std::logic_error);  // no endpoint
  EXPECT_THROW(net.connect(1, 1, sim::msec(1)), std::invalid_argument);
  EXPECT_THROW(net.connect(1, 2, -1), std::invalid_argument);
}

TEST_F(NetworkTest, EndpointReplacementTakesEffectAtDelivery) {
  int via_new = 0;
  net.register_endpoint(1, [](RouterId, const UpdateMessage&) {});
  net.register_endpoint(2, [](RouterId, const UpdateMessage&) {});
  net.connect(1, 2, sim::msec(5));
  net.send(1, 2, msg(0));
  // Replace the receiver while the message is in flight.
  net.register_endpoint(2,
                        [&](RouterId, const UpdateMessage&) { ++via_new; });
  sched.run_to_quiescence();
  EXPECT_EQ(via_new, 1);
}

}  // namespace
}  // namespace abrr::net
