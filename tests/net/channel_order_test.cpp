// In-order delivery audit under fault injection: delay bursts, loss
// windows, link outages and endpoint death must never reorder the
// delivered stream of a directed channel (the invariant the network
// enforces with per-channel sequence numbers — a violation throws).
#include <gtest/gtest.h>

#include <vector>

#include "bgp/route.h"
#include "net/network.h"

namespace abrr::net {
namespace {

using bgp::Ipv4Prefix;
using bgp::RouteBuilder;
using bgp::UpdateMessage;

UpdateMessage msg(int tag) {
  UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.announce.push_back(RouteBuilder{m.prefix}
                           .path_id(static_cast<bgp::PathId>(tag))
                           .as_path({65001})
                           .build());
  return m;
}

int tag_of(const UpdateMessage& m) {
  return static_cast<int>(m.announce.front().path_id);
}

class ChannelOrderTest : public ::testing::Test {
 protected:
  ChannelOrderTest() {
    net.register_endpoint(1, [](RouterId, const UpdateMessage&) {});
    net.register_endpoint(2, [&](RouterId, const UpdateMessage& m) {
      delivered.push_back(tag_of(m));
    });
    net.connect(1, 2, sim::msec(5), /*jitter=*/sim::msec(20));
  }

  /// The delivered tags must be a strictly increasing subsequence of
  /// what was sent (gaps = losses are fine, reordering is not).
  void expect_in_order() {
    for (std::size_t i = 1; i < delivered.size(); ++i) {
      ASSERT_LT(delivered[i - 1], delivered[i])
          << "reordered at position " << i;
    }
  }

  sim::Scheduler sched;
  sim::Rng rng{42};
  Network net{sched, rng};
  std::vector<int> delivered;
};

TEST_F(ChannelOrderTest, DelayBurstPreservesOrder) {
  int tag = 0;
  // Alternate impairment on and off while a stream is in flight: the
  // latency surcharge must never let later messages overtake.
  for (int phase = 0; phase < 6; ++phase) {
    const bool impaired = phase % 2 == 1;
    net.impair(1, 2, impaired ? sim::msec(300) : 0, 0);
    for (int i = 0; i < 10; ++i) net.send(1, 2, msg(tag++));
    sched.run_until(sched.now() + sim::msec(30));  // leave some in flight
  }
  net.impair(1, 2, 0, 0);
  sched.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 60u);
  expect_in_order();
}

TEST_F(ChannelOrderTest, LossBurstDropsButNeverReorders) {
  net.impair(1, 2, sim::msec(100), /*loss_prob=*/0.4);
  for (int i = 0; i < 200; ++i) net.send(1, 2, msg(i));
  sched.run_to_quiescence();
  EXPECT_LT(delivered.size(), 200u);  // p(no drop) = 0.6^200
  EXPECT_GT(delivered.size(), 0u);
  EXPECT_EQ(delivered.size() + net.total_dropped(), 200u);
  EXPECT_EQ(net.channel(1, 2)->dropped, net.total_dropped());
  expect_in_order();
}

TEST_F(ChannelOrderTest, LinkOutageBuffersAndFlushesInOrder) {
  for (int i = 0; i < 5; ++i) net.send(1, 2, msg(i));
  sched.run_until(sched.now() + sim::msec(1));  // all still in flight
  net.set_link(1, 2, false);
  for (int i = 5; i < 15; ++i) net.send(1, 2, msg(i));  // buffered
  sched.run_until(sched.now() + sim::sec(1));
  ASSERT_EQ(delivered.size(), 5u);  // only the pre-outage ones arrived
  net.set_link(1, 2, true);         // flush
  for (int i = 15; i < 20; ++i) net.send(1, 2, msg(i));
  sched.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 20u);
  expect_in_order();
  EXPECT_EQ(net.total_dropped(), 0u);  // TCP rode the outage out
}

TEST_F(ChannelOrderTest, SessionResetDropsBufferedMessages) {
  net.set_link(1, 2, false);
  for (int i = 0; i < 8; ++i) net.send(1, 2, msg(i));
  net.session_reset(1, 2);  // connection torn down: send window is gone
  net.set_link(1, 2, true);
  for (int i = 8; i < 12; ++i) net.send(1, 2, msg(i));
  sched.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered.front(), 8);
  EXPECT_EQ(net.total_dropped(), 8u);
  expect_in_order();
}

TEST_F(ChannelOrderTest, DeadEndpointDropsAtSend) {
  net.set_endpoint_up(2, false);
  for (int i = 0; i < 5; ++i) net.send(1, 2, msg(i));
  net.set_endpoint_up(2, true);
  for (int i = 5; i < 10; ++i) net.send(1, 2, msg(i));
  sched.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 5u);
  EXPECT_EQ(delivered.front(), 5);
  EXPECT_EQ(net.total_dropped(), 5u);
  expect_in_order();
}

TEST_F(ChannelOrderTest, MixedFaultSoakKeepsEveryChannelOrdered) {
  // Random soak across all hooks; the network's own sequence-number
  // check throws on any violation, so surviving the run IS the audit.
  sim::Rng chaos{7};
  int tag = 0;
  bool link_up = true;
  for (int round = 0; round < 40; ++round) {
    switch (chaos.index(6)) {
      case 0:
        net.impair(1, 2, chaos.uniform_int(0, sim::msec(200)), 0);
        break;
      case 1:
        net.impair(1, 2, 0, chaos.uniform01() * 0.5);
        break;
      case 2:
        link_up = !link_up;
        net.set_link(1, 2, link_up);
        break;
      case 3:
        net.session_reset(1, 2);
        break;
      default:
        break;  // plain traffic round
    }
    for (int i = 0; i < 8; ++i) net.send(1, 2, msg(tag++));
    sched.run_until(sched.now() + sim::msec(chaos.uniform_int(1, 50)));
  }
  net.impair(1, 2, 0, 0);
  if (!link_up) net.set_link(1, 2, true);
  sched.run_to_quiescence();
  expect_in_order();
  EXPECT_EQ(delivered.size() + net.total_dropped(),
            static_cast<std::size_t>(tag));
}

}  // namespace
}  // namespace abrr::net
